package gml

import (
	"bytes"
	"strings"
	"testing"

	"sitm/internal/geom"
	"sitm/internal/graph"
	"sitm/internal/indoor"
	"sitm/internal/louvre"
	"sitm/internal/topo"
)

func smallGraph(t *testing.T) *indoor.SpaceGraph {
	t.Helper()
	sg := indoor.NewSpaceGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sg.AddLayer(indoor.Layer{ID: "floor", Kind: indoor.Topographic, Rank: 1, Desc: "floors"}))
	must(sg.AddLayer(indoor.Layer{ID: "room", Kind: indoor.Semantic, Rank: 0}))
	fg := geom.Poly(geom.Rect(0, 0, 20, 10))
	must(sg.AddCell(indoor.Cell{ID: "f0", Layer: "floor", Class: "Floor", Floor: 0, Geometry: &fg}))
	rg := geom.PolyWithHoles(geom.Rect(0, 0, 10, 10), geom.Rect(4, 4, 6, 6))
	must(sg.AddCell(indoor.Cell{
		ID: "r1", Name: "room one", Layer: "room", Class: "Room", Floor: 0,
		Building: "wing", Theme: "paintings", Geometry: &rg,
		Attrs: map[string]string{"exit": "true", "a": "b"},
	}))
	must(sg.AddCell(indoor.Cell{ID: "r2", Layer: "room", Floor: 0}))
	sg.AddBoundary(indoor.Boundary{ID: "d1", Kind: indoor.Door, Name: "main"})
	must(sg.AddAccess("r1", "r2", "d1"))
	must(sg.AddConnectivity("r1", "r2", "d1"))
	must(sg.AddAdjacency("r1", "r2"))
	must(sg.AddJoint("f0", "r1", topo.TPPi))
	must(sg.AddJoint("f0", "r2", topo.NTPPi))
	return sg
}

func TestRoundTripSmall(t *testing.T) {
	sg := smallGraph(t)
	var buf bytes.Buffer
	if err := Encode(&buf, sg); err != nil {
		t.Fatal(err)
	}
	xml := buf.String()
	for _, want := range []string{"IndoorFeatures", "CellSpace", "Transition", "InterLayerConnection", "TPPi"} {
		if !strings.Contains(xml, want) {
			t.Errorf("document missing %q", want)
		}
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, sg, got)
}

func TestRoundTripLouvre(t *testing.T) {
	sg, h, err := louvre.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, sg); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, sg, got)
	// The decoded graph still passes the paper's hierarchy validation.
	if err := h.Validate(got); err != nil {
		t.Errorf("decoded hierarchy: %v", err)
	}
	// And preserves the one-way Carrousel exit.
	if !got.Accessible(louvre.ZoneS, louvre.ZoneC) || got.Accessible(louvre.ZoneC, louvre.ZoneS) {
		t.Error("one-way exit lost in round trip")
	}
}

func assertGraphsEqual(t *testing.T, want, got *indoor.SpaceGraph) {
	t.Helper()
	if len(want.Cells()) != len(got.Cells()) {
		t.Fatalf("cells: %d vs %d", len(want.Cells()), len(got.Cells()))
	}
	for _, wc := range want.Cells() {
		gc, ok := got.Cell(wc.ID)
		if !ok {
			t.Fatalf("cell %q lost", wc.ID)
		}
		if gc.Layer != wc.Layer || gc.Class != wc.Class || gc.Floor != wc.Floor ||
			gc.Name != wc.Name || gc.Building != wc.Building || gc.Theme != wc.Theme {
			t.Fatalf("cell %q fields: %+v vs %+v", wc.ID, gc, wc)
		}
		if (wc.Geometry == nil) != (gc.Geometry == nil) {
			t.Fatalf("cell %q geometry presence differs", wc.ID)
		}
		if wc.Geometry != nil && !wc.Geometry.Equal(*gc.Geometry) {
			t.Fatalf("cell %q geometry differs", wc.ID)
		}
		for k, v := range wc.Attrs {
			if gc.Attrs[k] != v {
				t.Fatalf("cell %q attr %q: %q vs %q", wc.ID, k, gc.Attrs[k], v)
			}
		}
	}
	if len(want.Joints()) != len(got.Joints()) {
		t.Fatalf("joints: %d vs %d", len(want.Joints()), len(got.Joints()))
	}
	wj, gj := want.Joints(), got.Joints()
	for i := range wj {
		if wj[i] != gj[i] {
			t.Fatalf("joint %d: %+v vs %+v", i, wj[i], gj[i])
		}
	}
	// Edge multiset per layer.
	for _, l := range want.Layers() {
		wg, _ := want.NRG(l.ID)
		gg, ok := got.NRG(l.ID)
		if !ok {
			t.Fatalf("layer %q lost", l.ID)
		}
		if wg.NumEdges() != gg.NumEdges() {
			t.Fatalf("layer %q edges: %d vs %d", l.ID, wg.NumEdges(), gg.NumEdges())
		}
		wes, ges := edgeSet(wg.Edges()), edgeSet(gg.Edges())
		for sig, n := range wes {
			if ges[sig] != n {
				t.Fatalf("layer %q edge %q: %d vs %d", l.ID, sig, ges[sig], n)
			}
		}
	}
}

func edgeSet(edges []graph.Edge) map[string]int {
	m := make(map[string]int)
	for _, e := range edges {
		m[e.From+"|"+e.To+"|"+e.ID+"|"+e.Kind]++
	}
	return m
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("not xml")); err == nil {
		t.Error("bad xml must error")
	}
	bad := `<IndoorFeatures><SpaceLayer id="l" kind="topographic" rank="0"></SpaceLayer>` +
		`<CellSpace id="c" layer="l" floor="0"><Geometry><Exterior>zz</Exterior></Geometry></CellSpace></IndoorFeatures>`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("bad position must error")
	}
	badRel := `<IndoorFeatures><SpaceLayer id="a" kind="topographic" rank="1"/><SpaceLayer id="b" kind="topographic" rank="0"/>` +
		`<CellSpace id="x" layer="a" floor="0"/><CellSpace id="y" layer="b" floor="0"/>` +
		`<InterLayerConnection from="x" to="y" rel="NOPE"/></IndoorFeatures>`
	if _, err := Decode(strings.NewReader(badRel)); err == nil {
		t.Error("unknown relation must error")
	}
}
