// Package gml serialises indoor space graphs to an IndoorGML-core-flavoured
// XML document and back. IndoorGML is "aimed at representing and allowing
// the exchange of geoinformation for indoor navigational systems" (§2.1);
// this package plays that exchange role for the repository's space model:
// cell spaces with geometry, per-layer NRG transitions (the dual space) and
// inter-layer joint edges, round-trip safe.
package gml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sitm/internal/geom"
	"sitm/internal/indoor"
	"sitm/internal/topo"
)

// Document is the XML root.
type Document struct {
	XMLName     xml.Name         `xml:"IndoorFeatures"`
	Layers      []LayerElem      `xml:"SpaceLayer"`
	Cells       []CellElem       `xml:"CellSpace"`
	Boundaries  []BoundaryElem   `xml:"CellSpaceBoundary"`
	Transitions []TransitionElem `xml:"Transition"`
	Joints      []JointElem      `xml:"InterLayerConnection"`
}

// LayerElem mirrors indoor.Layer.
type LayerElem struct {
	ID   string `xml:"id,attr"`
	Kind string `xml:"kind,attr"`
	Rank int    `xml:"rank,attr"`
	Desc string `xml:"desc,attr,omitempty"`
}

// CellElem mirrors indoor.Cell.
type CellElem struct {
	ID       string     `xml:"id,attr"`
	Name     string     `xml:"name,attr,omitempty"`
	Layer    string     `xml:"layer,attr"`
	Class    string     `xml:"class,attr,omitempty"`
	Floor    int        `xml:"floor,attr"`
	Building string     `xml:"building,attr,omitempty"`
	Theme    string     `xml:"theme,attr,omitempty"`
	Geometry *GeomElem  `xml:"Geometry,omitempty"`
	Attrs    []AttrElem `xml:"Attr,omitempty"`
}

// AttrElem is one key/value cell attribute.
type AttrElem struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// GeomElem carries polygon rings as "x,y x,y ..." position lists.
type GeomElem struct {
	Exterior string   `xml:"Exterior"`
	Holes    []string `xml:"Interior,omitempty"`
}

// BoundaryElem mirrors indoor.Boundary.
type BoundaryElem struct {
	ID   string `xml:"id,attr"`
	Kind string `xml:"kind,attr"`
	Name string `xml:"name,attr,omitempty"`
}

// TransitionElem is one intra-layer NRG edge (dual-space transition).
type TransitionElem struct {
	From     string `xml:"from,attr"`
	To       string `xml:"to,attr"`
	Boundary string `xml:"boundary,attr,omitempty"`
	Kind     string `xml:"kind,attr"` // accessibility | connectivity | adjacency
}

// JointElem is one inter-layer joint edge with its topological relation.
type JointElem struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	Rel  string `xml:"rel,attr"`
}

// Encode writes the space graph as XML.
func Encode(w io.Writer, sg *indoor.SpaceGraph) error {
	doc := Document{}
	for _, l := range sg.Layers() {
		doc.Layers = append(doc.Layers, LayerElem{
			ID: l.ID, Kind: l.Kind.String(), Rank: l.Rank, Desc: l.Desc,
		})
	}
	for _, c := range sg.Cells() {
		ce := CellElem{
			ID: c.ID, Name: c.Name, Layer: c.Layer, Class: c.Class,
			Floor: c.Floor, Building: c.Building, Theme: c.Theme,
		}
		if c.Geometry != nil {
			ge := GeomElem{Exterior: ringToPosList(c.Geometry.Exterior)}
			for _, h := range c.Geometry.Holes {
				ge.Holes = append(ge.Holes, ringToPosList(h))
			}
			ce.Geometry = &ge
		}
		for k, v := range c.Attrs {
			ce.Attrs = append(ce.Attrs, AttrElem{Key: k, Value: v})
		}
		sortAttrs(ce.Attrs)
		doc.Cells = append(doc.Cells, ce)
	}
	for _, l := range sg.Layers() {
		g, ok := sg.NRG(l.ID)
		if !ok {
			continue
		}
		for _, e := range g.Edges() {
			doc.Transitions = append(doc.Transitions, TransitionElem{
				From: e.From, To: e.To, Boundary: e.ID, Kind: e.Kind,
			})
			if b, ok := sg.BoundaryOf(e.ID); ok {
				doc.Boundaries = appendBoundaryOnce(doc.Boundaries, b)
			}
		}
	}
	for _, j := range sg.Joints() {
		doc.Joints = append(doc.Joints, JointElem{From: j.From, To: j.To, Rel: j.Rel.RCCName()})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("gml: encode: %w", err)
	}
	return enc.Flush()
}

func sortAttrs(attrs []AttrElem) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Key < attrs[j-1].Key; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}

func appendBoundaryOnce(bs []BoundaryElem, b indoor.Boundary) []BoundaryElem {
	for _, e := range bs {
		if e.ID == b.ID {
			return bs
		}
	}
	return append(bs, BoundaryElem{ID: b.ID, Kind: b.Kind.String(), Name: b.Name})
}

// Decode parses a document produced by Encode into a fresh space graph.
func Decode(r io.Reader) (*indoor.SpaceGraph, error) {
	var doc Document
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("gml: decode: %w", err)
	}
	sg := indoor.NewSpaceGraph()
	for _, l := range doc.Layers {
		kind := indoor.Topographic
		if l.Kind == indoor.Semantic.String() {
			kind = indoor.Semantic
		}
		if err := sg.AddLayer(indoor.Layer{ID: l.ID, Kind: kind, Rank: l.Rank, Desc: l.Desc}); err != nil {
			return nil, err
		}
	}
	for _, b := range doc.Boundaries {
		sg.AddBoundary(indoor.Boundary{ID: b.ID, Kind: boundaryKind(b.Kind), Name: b.Name})
	}
	for _, ce := range doc.Cells {
		cell := indoor.Cell{
			ID: ce.ID, Name: ce.Name, Layer: ce.Layer, Class: ce.Class,
			Floor: ce.Floor, Building: ce.Building, Theme: ce.Theme,
		}
		if ce.Geometry != nil {
			ext, err := posListToRing(ce.Geometry.Exterior)
			if err != nil {
				return nil, fmt.Errorf("gml: cell %q: %w", ce.ID, err)
			}
			var holes []geom.Ring
			for _, h := range ce.Geometry.Holes {
				ring, err := posListToRing(h)
				if err != nil {
					return nil, fmt.Errorf("gml: cell %q hole: %w", ce.ID, err)
				}
				holes = append(holes, ring)
			}
			p := geom.PolyWithHoles(ext, holes...)
			cell.Geometry = &p
		}
		if len(ce.Attrs) > 0 {
			cell.Attrs = make(map[string]string, len(ce.Attrs))
			for _, a := range ce.Attrs {
				cell.Attrs[a.Key] = a.Value
			}
		}
		if err := sg.AddCell(cell); err != nil {
			return nil, err
		}
	}
	for _, tr := range doc.Transitions {
		var err error
		switch tr.Kind {
		case indoor.EdgeAccessibility:
			err = sg.AddAccess(tr.From, tr.To, tr.Boundary)
		case indoor.EdgeConnectivity:
			// Connectivity was stored bidirectionally; re-adding both
			// directions would double edges, so add one directed edge's
			// worth only when From < To and mirror once.
			if tr.From < tr.To {
				err = sg.AddConnectivity(tr.From, tr.To, tr.Boundary)
			}
		case indoor.EdgeAdjacency:
			if tr.From < tr.To {
				err = sg.AddAdjacency(tr.From, tr.To)
			}
		default:
			err = fmt.Errorf("gml: unknown transition kind %q", tr.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, j := range doc.Joints {
		rel, err := relFromRCC(j.Rel)
		if err != nil {
			return nil, err
		}
		if err := sg.AddJoint(j.From, j.To, rel); err != nil {
			return nil, err
		}
	}
	return sg, nil
}

func boundaryKind(s string) indoor.BoundaryKind {
	for k := indoor.Wall; k <= indoor.Virtual; k++ {
		if k.String() == s {
			return k
		}
	}
	return indoor.Door
}

func relFromRCC(s string) (topo.Rel, error) {
	for _, r := range topo.AllRels {
		if r.RCCName() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("gml: unknown relation %q", s)
}

func ringToPosList(r geom.Ring) string {
	parts := make([]string, len(r))
	for i, p := range r {
		parts[i] = strconv.FormatFloat(p.X, 'g', -1, 64) + "," + strconv.FormatFloat(p.Y, 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

func posListToRing(s string) (geom.Ring, error) {
	fields := strings.Fields(s)
	ring := make(geom.Ring, 0, len(fields))
	for _, f := range fields {
		xy := strings.Split(f, ",")
		if len(xy) != 2 {
			return nil, fmt.Errorf("bad position %q", f)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad x in %q: %w", f, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad y in %q: %w", f, err)
		}
		ring = append(ring, geom.Pt(x, y))
	}
	return ring, nil
}
