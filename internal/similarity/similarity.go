// Package similarity implements the semantic trajectory similarity metrics
// the paper's conclusion announces as the next step ("proposing semantic
// similarity metrics for trajectories (e.g. for visitor profiling)", §5):
// symbolic edit distance and LCSS over cell sequences, a hierarchy-aware
// cell similarity (Wu–Palmer over the space graph's layer hierarchy), DTW
// with that cell similarity as local cost, annotation-based similarity, and
// k-medoids clustering for visitor profiling.
package similarity

import (
	"fmt"
	"math/rand"
	"sort"

	"sitm/internal/core"
	"sitm/internal/indoor"
	"sitm/internal/parallel"
)

// EditDistance is the Levenshtein distance between two cell sequences: the
// minimum number of insertions, deletions and substitutions turning a into
// b. It treats cells as opaque symbols.
func EditDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditSimilarity normalises EditDistance into [0, 1].
func EditSimilarity(a, b []string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(n)
}

// LCSS returns the length of the longest common subsequence of the two cell
// sequences.
func LCSS(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}

// LCSSSimilarity normalises LCSS by the shorter sequence length.
func LCSSSimilarity(a, b []string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	return float64(LCSS(a, b)) / float64(n)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// CellSimilarity scores how semantically close two cells are, in [0, 1].
type CellSimilarity func(a, b string) float64

// ExactCellSimilarity is 1 for identical cells and 0 otherwise.
func ExactCellSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// HierarchyCellSimilarity returns a Wu–Palmer-style similarity over the
// space graph's layer hierarchy: sim(a, b) = 2·depth(LCA) / (depth(a) +
// depth(b)), where depth counts hierarchy levels from the root. Two rooms
// of the same zone score higher than two rooms of different wings — the
// structured reasoning about granularity that the paper's static hierarchy
// enables (§3.2).
func HierarchyCellSimilarity(sg *indoor.SpaceGraph, h indoor.Hierarchy) CellSimilarity {
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		da, db := h.Depth(sg, a), h.Depth(sg, b)
		if da < 0 || db < 0 || da+db == 0 {
			return 0
		}
		lca, ok := h.LowestCommonAncestor(sg, a, b)
		if !ok {
			return 0
		}
		return 2 * float64(h.Depth(sg, lca)) / float64(da+db)
	}
}

// DTW computes dynamic-time-warping similarity of two cell sequences under
// a local cell similarity: cost(i,j) = 1 − sim(a_i, b_j). It returns the
// normalised similarity 1 − totalCost/pathLength, in [0, 1].
func DTW(a, b []string, sim CellSimilarity) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	const inf = 1 << 30
	// dp costs plus path length tracking for normalisation.
	type cell struct {
		cost float64
		len  int
	}
	dp := make([][]cell, len(a)+1)
	for i := range dp {
		dp[i] = make([]cell, len(b)+1)
		for j := range dp[i] {
			dp[i][j] = cell{cost: inf}
		}
	}
	dp[0][0] = cell{}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			local := 1 - sim(a[i-1], b[j-1])
			best := dp[i-1][j-1]
			if dp[i-1][j].cost < best.cost {
				best = dp[i-1][j]
			}
			if dp[i][j-1].cost < best.cost {
				best = dp[i][j-1]
			}
			dp[i][j] = cell{cost: best.cost + local, len: best.len + 1}
		}
	}
	end := dp[len(a)][len(b)]
	if end.len == 0 {
		return 0
	}
	s := 1 - end.cost/float64(end.len)
	if s < 0 {
		return 0
	}
	return s
}

// TrajectorySimilarity combines spatial sequence similarity (DTW over the
// traces' cell sequences) with annotation similarity (Jaccard over the
// trajectory annotation sets), weighted by spatialWeight ∈ [0, 1].
func TrajectorySimilarity(a, b core.Trajectory, sim CellSimilarity, spatialWeight float64) float64 {
	if spatialWeight < 0 {
		spatialWeight = 0
	}
	if spatialWeight > 1 {
		spatialWeight = 1
	}
	spatial := DTW(a.Trace.Cells(), b.Trace.Cells(), sim)
	semantic := a.Ann.Jaccard(b.Ann)
	return spatialWeight*spatial + (1-spatialWeight)*semantic
}

// PairwiseMatrix computes the full n×n similarity matrix of the
// trajectories under simFn. simFn is assumed symmetric (every metric in
// this package is), so only the upper triangle is evaluated — half the
// O(n²) kernel calls of the naive double loop — and the result is mirrored;
// the diagonal is 1 (a trajectory is maximally similar to itself). The
// triangle is fanned out over the parallel worker pool, so with symmetric
// savings and P workers the wall-clock cost is ~n²/(2P) kernel calls.
// simFn must be safe for concurrent calls (pure functions are).
func PairwiseMatrix(trajs []core.Trajectory, simFn func(a, b core.Trajectory) float64) [][]float64 {
	n := len(trajs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	parallel.MapPairsSymmetric(n, func(i, j int) {
		s := simFn(trajs[i], trajs[j])
		m[i][j] = s
		m[j][i] = s
	})
	return m
}

// Clusters is a k-medoids assignment: Medoids holds the medoid index of
// each cluster; Assign maps every trajectory index to its cluster.
type Clusters struct {
	Medoids []int
	Assign  []int
}

// KMedoids clusters trajectories by the given pairwise similarity using the
// PAM-style alternating refinement, seeded deterministically. It is the
// visitor-profiling vehicle the paper sketches. The similarity matrix is
// computed in parallel via PairwiseMatrix; callers that already hold a
// matrix should use KMedoidsMatrix directly.
func KMedoids(trajs []core.Trajectory, k int, simFn func(a, b core.Trajectory) float64, seed int64) Clusters {
	if k <= 0 || len(trajs) == 0 {
		return Clusters{} // degenerate before paying for the O(n²) matrix
	}
	return KMedoidsMatrix(PairwiseMatrix(trajs, simFn), k, seed)
}

// KMedoidsMatrix clusters by a precomputed symmetric similarity matrix
// (sim[i][j] ∈ [0, 1], diagonal 1), using the same seeded PAM refinement
// as KMedoids. The matrix must be square; a jagged hand-built matrix is a
// programmer error and panics with a clear message.
func KMedoidsMatrix(sim [][]float64, k int, seed int64) Clusters {
	n := len(sim)
	if k <= 0 || n == 0 {
		return Clusters{}
	}
	for i, row := range sim {
		if len(row) != n {
			panic(fmt.Sprintf("similarity: KMedoidsMatrix: row %d has %d entries, want %d (matrix must be square)", i, len(row), n))
		}
	}
	if k > n {
		k = n
	}
	// Distances (1 − similarity) drive the refinement.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = 1 - sim[i][j]
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	sort.Ints(medoids)
	assign := make([]int, n)

	assignAll := func() float64 {
		var total float64
		for i := 0; i < n; i++ {
			best, bestD := 0, dist[i][medoids[0]]
			for c := 1; c < k; c++ {
				if d := dist[i][medoids[c]]; d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			total += bestD
		}
		return total
	}

	cost := assignAll()
	for iter := 0; iter < 50; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				old := medoids[c]
				medoids[c] = cand
				if newCost := assignAll(); newCost < cost-1e-12 {
					cost = newCost
					improved = true
				} else {
					medoids[c] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	assignAll()
	return Clusters{Medoids: medoids, Assign: assign}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
