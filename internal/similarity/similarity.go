// Package similarity implements the semantic trajectory similarity metrics
// the paper's conclusion announces as the next step ("proposing semantic
// similarity metrics for trajectories (e.g. for visitor profiling)", §5):
// symbolic edit distance and LCSS over cell sequences, a hierarchy-aware
// cell similarity (Wu–Palmer over the space graph's layer hierarchy), DTW
// with that cell similarity as local cost, annotation-based similarity, and
// k-medoids clustering for visitor profiling.
//
// The bulk paths run on the interned core of interned.go: cells are
// dictionary-encoded to dense int32 ids (internal/symtab), cell similarity
// is precomputed into a dense table, and the DP kernels run over flat
// reusable scratch. The string-based functions below stay direct (a
// single-pair call cannot amortise interning), and the interned paths
// produce bit-for-bit their results — the differential tests enforce it.
package similarity

import (
	"sitm/internal/core"
	"sitm/internal/indoor"
	"sitm/internal/parallel"
)

// EditDistance is the Levenshtein distance between two cell sequences: the
// minimum number of insertions, deletions and substitutions turning a into
// b. It treats cells as opaque symbols. For all-pairs work use
// Corpus.EditDistanceMatrix, which runs the interned kernel with reused
// scratch.
func EditDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity normalises EditDistance into [0, 1].
func EditSimilarity(a, b []string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(n)
}

// LCSS returns the length of the longest common subsequence of the two cell
// sequences. For all-pairs work use Corpus.LCSSMatrix.
func LCSS(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LCSSSimilarity normalises LCSS by the shorter sequence length.
func LCSSSimilarity(a, b []string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	return float64(LCSS(a, b)) / float64(n)
}

// CellSimilarity scores how semantically close two cells are, in [0, 1].
type CellSimilarity func(a, b string) float64

// ExactCellSimilarity is 1 for identical cells and 0 otherwise.
func ExactCellSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// HierarchyCellSimilarity returns a Wu–Palmer-style similarity over the
// space graph's layer hierarchy: sim(a, b) = 2·depth(LCA) / (depth(a) +
// depth(b)), where depth counts hierarchy levels from the root. Two rooms
// of the same zone score higher than two rooms of different wings — the
// structured reasoning about granularity that the paper's static hierarchy
// enables (§3.2). Every call walks the hierarchy; bulk pipelines should
// precompute it into a dense table once via Corpus.CellTable, which turns
// the per-trajectory-pair walks into per-cell-pair walks.
func HierarchyCellSimilarity(sg *indoor.SpaceGraph, h indoor.Hierarchy) CellSimilarity {
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		da, db := h.Depth(sg, a), h.Depth(sg, b)
		if da < 0 || db < 0 || da+db == 0 {
			return 0
		}
		lca, ok := h.LowestCommonAncestor(sg, a, b)
		if !ok {
			return 0
		}
		return 2 * float64(h.Depth(sg, lca)) / float64(da+db)
	}
}

// DTW computes dynamic-time-warping similarity of two cell sequences under
// a local cell similarity: cost(i,j) = 1 − sim(a_i, b_j). It returns the
// normalised similarity 1 − totalCost/pathLength, in [0, 1]. The DP is
// two-row (no O(L²) table); all-pairs callers should use the interned
// Corpus.PairwiseMatrix, which also hoists sim into a precomputed dense
// cell table.
func DTW(a, b []string, sim CellSimilarity) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	const inf = 1 << 30
	prevC := make([]float64, len(b)+1)
	curC := make([]float64, len(b)+1)
	prevL := make([]int, len(b)+1)
	curL := make([]int, len(b)+1)
	for j := range prevC {
		prevC[j] = inf
	}
	prevC[0] = 0
	for i := 1; i <= len(a); i++ {
		curC[0] = inf
		curL[0] = 0
		for j := 1; j <= len(b); j++ {
			local := 1 - sim(a[i-1], b[j-1])
			bc, bl := prevC[j-1], prevL[j-1]
			if prevC[j] < bc {
				bc, bl = prevC[j], prevL[j]
			}
			if curC[j-1] < bc {
				bc, bl = curC[j-1], curL[j-1]
			}
			curC[j] = bc + local
			curL[j] = bl + 1
		}
		prevC, curC = curC, prevC
		prevL, curL = curL, prevL
	}
	if prevL[len(b)] == 0 {
		return 0
	}
	s := 1 - prevC[len(b)]/float64(prevL[len(b)])
	if s < 0 {
		return 0
	}
	return s
}

// TrajectorySimilarity combines spatial sequence similarity (DTW over the
// traces' cell sequences) with annotation similarity (Jaccard over the
// trajectory annotation sets), weighted by spatialWeight ∈ [0, 1]. For
// bulk pairwise work, build a Corpus and a CellSimTable once —
// Corpus.PairwiseMatrix produces bit-for-bit this kernel's values without
// the per-call string costs.
func TrajectorySimilarity(a, b core.Trajectory, sim CellSimilarity, spatialWeight float64) float64 {
	if spatialWeight < 0 {
		spatialWeight = 0
	}
	if spatialWeight > 1 {
		spatialWeight = 1
	}
	spatial := DTW(a.Trace.Cells(), b.Trace.Cells(), sim)
	semantic := a.Ann.Jaccard(b.Ann)
	return spatialWeight*spatial + (1-spatialWeight)*semantic
}

// PairwiseMatrix computes the full n×n similarity matrix of the
// trajectories under simFn. simFn is assumed symmetric (every metric in
// this package is), so only the upper triangle is evaluated — half the
// O(n²) kernel calls of the naive double loop — and the result is mirrored;
// the diagonal is 1 (a trajectory is maximally similar to itself). The
// triangle is fanned out over the parallel worker pool, so with symmetric
// savings and P workers the wall-clock cost is ~n²/(2P) kernel calls.
// simFn must be safe for concurrent calls (pure functions are).
//
// This entry point accepts an arbitrary kernel and therefore cannot
// intern; when the kernel is TrajectorySimilarity, Corpus.PairwiseMatrix
// computes the identical matrix over interned data at a fraction of the
// cost (experiment E6).
func PairwiseMatrix(trajs []core.Trajectory, simFn func(a, b core.Trajectory) float64) [][]float64 {
	n := len(trajs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	parallel.MapPairsSymmetric(n, func(i, j int) {
		s := simFn(trajs[i], trajs[j])
		m[i][j] = s
		m[j][i] = s
	})
	return m
}
