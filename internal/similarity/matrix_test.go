package similarity

import (
	"sync/atomic"
	"testing"

	"sitm/internal/core"
)

func TestPairwiseMatrixMatchesSequentialDoubleLoop(t *testing.T) {
	visit := core.NewAnnotations("goal", "visit")
	trajs := []core.Trajectory{
		mkTraj(t, "a", visit, "x", "y", "z"),
		mkTraj(t, "b", visit, "x", "y"),
		mkTraj(t, "c", visit, "p", "q", "r"),
		mkTraj(t, "d", visit, "x", "q"),
		mkTraj(t, "e", visit, "p"),
	}
	simFn := func(a, b core.Trajectory) float64 {
		return TrajectorySimilarity(a, b, ExactCellSimilarity, 0.7)
	}
	got := PairwiseMatrix(trajs, simFn)
	n := len(trajs)
	if len(got) != n {
		t.Fatalf("matrix size = %d", len(got))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 1.0
			if i != j {
				want = simFn(trajs[i], trajs[j])
			}
			if got[i][j] != want {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
			if got[i][j] != got[j][i] {
				t.Errorf("matrix not symmetric at (%d, %d)", i, j)
			}
		}
	}
}

func TestPairwiseMatrixCallsKernelOncePerPair(t *testing.T) {
	visit := core.NewAnnotations("goal", "visit")
	var trajs []core.Trajectory
	for _, mo := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		trajs = append(trajs, mkTraj(t, mo, visit, "x", mo))
	}
	var calls atomic.Int64
	PairwiseMatrix(trajs, func(a, b core.Trajectory) float64 {
		calls.Add(1)
		return 0.5
	})
	n := int64(len(trajs))
	if got := calls.Load(); got != n*(n-1)/2 {
		t.Errorf("kernel calls = %d, want %d (upper triangle only)", got, n*(n-1)/2)
	}
}

func TestPairwiseMatrixEmpty(t *testing.T) {
	if m := PairwiseMatrix(nil, nil); len(m) != 0 {
		t.Errorf("empty input = %v", m)
	}
}

func TestKMedoidsMatrixMatchesKMedoids(t *testing.T) {
	visit := core.NewAnnotations("goal", "visit")
	trajs := []core.Trajectory{
		mkTraj(t, "a", visit, "x", "y", "z"),
		mkTraj(t, "b", visit, "x", "y", "z"),
		mkTraj(t, "c", visit, "x", "y"),
		mkTraj(t, "d", visit, "p", "q", "r"),
		mkTraj(t, "e", visit, "p", "q", "r"),
		mkTraj(t, "f", visit, "p", "q"),
	}
	simFn := func(a, b core.Trajectory) float64 {
		return TrajectorySimilarity(a, b, ExactCellSimilarity, 1)
	}
	direct := KMedoids(trajs, 2, simFn, 42)
	viaMatrix := KMedoidsMatrix(PairwiseMatrix(trajs, simFn), 2, 42)
	if len(direct.Medoids) != len(viaMatrix.Medoids) {
		t.Fatalf("medoid counts differ: %v vs %v", direct.Medoids, viaMatrix.Medoids)
	}
	for i := range direct.Medoids {
		if direct.Medoids[i] != viaMatrix.Medoids[i] {
			t.Errorf("medoids differ: %v vs %v", direct.Medoids, viaMatrix.Medoids)
			break
		}
	}
	for i := range direct.Assign {
		if direct.Assign[i] != viaMatrix.Assign[i] {
			t.Errorf("assignments differ: %v vs %v", direct.Assign, viaMatrix.Assign)
			break
		}
	}
}

func TestKMedoidsMatrixEdgeCases(t *testing.T) {
	if cl := KMedoidsMatrix(nil, 2, 1); len(cl.Medoids) != 0 {
		t.Error("empty matrix")
	}
	one := [][]float64{{1}}
	if cl := KMedoidsMatrix(one, 3, 1); len(cl.Medoids) != 1 {
		t.Error("k>n must clamp")
	}
}
