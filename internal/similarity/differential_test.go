package similarity

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sitm/internal/core"
)

// This file pins the interned kernels to the legacy string implementations
// they replaced: verbatim copies of the pre-interning code serve as
// references, and randomized corpora (varying alphabets, sequence lengths,
// annotation sets and GOMAXPROCS) must reproduce their outputs bit for
// bit — not approximately: float results are compared with ==.

// ---- legacy reference implementations (the seed's string paths) ----------

func refEditDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if cur[j-1]+1 < d {
				d = cur[j-1] + 1
			}
			if prev[j-1]+cost < d {
				d = prev[j-1] + cost
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func refLCSS(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}

func refDTW(a, b []string, sim CellSimilarity) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	const inf = 1 << 30
	type cell struct {
		cost float64
		len  int
	}
	dp := make([][]cell, len(a)+1)
	for i := range dp {
		dp[i] = make([]cell, len(b)+1)
		for j := range dp[i] {
			dp[i][j] = cell{cost: inf}
		}
	}
	dp[0][0] = cell{}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			local := 1 - sim(a[i-1], b[j-1])
			best := dp[i-1][j-1]
			if dp[i-1][j].cost < best.cost {
				best = dp[i-1][j]
			}
			if dp[i][j-1].cost < best.cost {
				best = dp[i][j-1]
			}
			dp[i][j] = cell{cost: best.cost + local, len: best.len + 1}
		}
	}
	end := dp[len(a)][len(b)]
	if end.len == 0 {
		return 0
	}
	s := 1 - end.cost/float64(end.len)
	if s < 0 {
		return 0
	}
	return s
}

func refTrajectorySimilarity(a, b core.Trajectory, sim CellSimilarity, spatialWeight float64) float64 {
	if spatialWeight < 0 {
		spatialWeight = 0
	}
	if spatialWeight > 1 {
		spatialWeight = 1
	}
	spatial := refDTW(a.Trace.Cells(), b.Trace.Cells(), sim)
	semantic := a.Ann.Jaccard(b.Ann)
	return spatialWeight*spatial + (1-spatialWeight)*semantic
}

// refKMedoidsMatrix is the seed's PAM: full O(n·k) reassignment per
// candidate swap, linear membership scan.
func refKMedoidsMatrix(sim [][]float64, k int, seed int64) Clusters {
	n := len(sim)
	if k <= 0 || n == 0 {
		return Clusters{}
	}
	if k > n {
		k = n
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = 1 - sim[i][j]
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	sortInts(medoids)
	assign := make([]int, n)
	assignAll := func() float64 {
		var total float64
		for i := 0; i < n; i++ {
			best, bestD := 0, dist[i][medoids[0]]
			for c := 1; c < k; c++ {
				if d := dist[i][medoids[c]]; d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			total += bestD
		}
		return total
	}
	contains := func(xs []int, x int) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}
	cost := assignAll()
	for iter := 0; iter < 50; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				old := medoids[c]
				medoids[c] = cand
				if newCost := assignAll(); newCost < cost-1e-12 {
					cost = newCost
					improved = true
				} else {
					medoids[c] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	assignAll()
	return Clusters{Medoids: medoids, Assign: assign}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ---- randomized corpora ---------------------------------------------------

// hashCellSim is a pure, symmetric, deterministic cell similarity with
// sim(a, a) = 1 and irregular values in [0, 1) otherwise — a stand-in for
// the hierarchy kernel that exercises float accumulation paths hard.
func hashCellSim(a, b string) float64 {
	if a == b {
		return 1
	}
	if b < a {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

func randSeq(rng *rand.Rand, alphabet []string, maxLen int) []string {
	n := rng.Intn(maxLen + 1)
	out := make([]string, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return out
}

func randTrajs(rng *rand.Rand, n int, alphabet []string) []core.Trajectory {
	day := time.Date(2017, 3, 1, 9, 0, 0, 0, time.UTC)
	goals := []string{"visit", "buy", "eat", "exit", "meet"}
	out := make([]core.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		cells := randSeq(rng, alphabet, 10)
		if len(cells) == 0 {
			cells = []string{alphabet[0]} // NewTrajectory rejects empty traces
		}
		var tr core.Trace
		for j, c := range cells {
			tr = append(tr, core.PresenceInterval{
				Cell:  c,
				Start: day.Add(time.Duration(j) * time.Minute),
				End:   day.Add(time.Duration(j+1) * time.Minute),
			})
		}
		ann := core.NewAnnotations("goal", goals[rng.Intn(len(goals))])
		for rng.Intn(2) == 0 {
			ann.Add("goal", goals[rng.Intn(len(goals))])
		}
		traj, err := core.NewTrajectory(fmt.Sprintf("mo%03d", i), tr, ann)
		if err != nil {
			panic(err)
		}
		out = append(out, traj)
	}
	return out
}

func randAlphabet(rng *rand.Rand) []string {
	k := 1 + rng.Intn(12)
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("zone%02d", i)
	}
	return out
}

// withGOMAXPROCS runs fn under each listed GOMAXPROCS value, restoring the
// original afterwards: the worker pool sizes itself from GOMAXPROCS, so
// this drives both the sequential and the parallel scheduling paths.
func withGOMAXPROCS(t *testing.T, procs []int, fn func(t *testing.T, p int)) {
	t.Helper()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fn(t, p)
	}
}

// ---- the differential properties -----------------------------------------

func TestDifferentialSequenceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		alphabet := randAlphabet(rng)
		a := randSeq(rng, alphabet, 12)
		b := randSeq(rng, alphabet, 12)
		if got, want := EditDistance(a, b), refEditDistance(a, b); got != want {
			t.Fatalf("EditDistance(%v, %v) = %d, legacy %d", a, b, got, want)
		}
		if got, want := LCSS(a, b), refLCSS(a, b); got != want {
			t.Fatalf("LCSS(%v, %v) = %d, legacy %d", a, b, got, want)
		}
		if got, want := DTW(a, b, hashCellSim), refDTW(a, b, hashCellSim); got != want {
			t.Fatalf("DTW(%v, %v) = %v, legacy %v (must be bit-identical)", a, b, got, want)
		}
	}
}

// TestCorpusRejectsForeignCellTable: ids are per-dictionary, so a table
// built from another corpus's dict must be rejected loudly, not produce
// silently wrong similarities.
func TestCorpusRejectsForeignCellTable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewCorpus(randTrajs(rng, 4, randAlphabet(rng)))
	b := NewCorpus(randTrajs(rng, 4, randAlphabet(rng)))
	defer func() {
		if recover() == nil {
			t.Fatal("PairwiseMatrix with a foreign CellSimTable must panic")
		}
	}()
	a.PairwiseMatrix(b.CellTable(hashCellSim), 0.5)
}

// TestDifferentialIntMetricMatrices: the interned bulk edit/LCSS matrices
// must reproduce the scalar string kernels exactly (both metrics are
// value-symmetric, so mirroring cannot diverge).
func TestDifferentialIntMetricMatrices(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 8}, func(t *testing.T, p int) {
		rng := rand.New(rand.NewSource(int64(600 + p)))
		for trial := 0; trial < 10; trial++ {
			trajs := randTrajs(rng, 2+rng.Intn(15), randAlphabet(rng))
			c := NewCorpus(trajs)
			edit := c.EditDistanceMatrix()
			lcss := c.LCSSMatrix()
			for i := range trajs {
				for j := range trajs {
					a, b := trajs[i].Trace.Cells(), trajs[j].Trace.Cells()
					if want := refEditDistance(a, b); edit[i][j] != want {
						t.Fatalf("GOMAXPROCS=%d: edit[%d][%d] = %d, legacy %d", p, i, j, edit[i][j], want)
					}
					if want := refLCSS(a, b); lcss[i][j] != want {
						t.Fatalf("GOMAXPROCS=%d: lcss[%d][%d] = %d, legacy %d", p, i, j, lcss[i][j], want)
					}
				}
			}
		}
	})
}

func TestDifferentialPairwiseMatrixAcrossGOMAXPROCS(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 8}, func(t *testing.T, p int) {
		rng := rand.New(rand.NewSource(int64(100 + p)))
		for trial := 0; trial < 8; trial++ {
			alphabet := randAlphabet(rng)
			trajs := randTrajs(rng, 2+rng.Intn(18), alphabet)
			w := rng.Float64()
			c := NewCorpus(trajs)
			got := c.PairwiseMatrix(c.CellTable(hashCellSim), w)
			// The legacy PairwiseMatrix evaluated the kernel on the upper
			// triangle only and mirrored (DTW tie-breaking is not exactly
			// direction-symmetric), so the reference does the same.
			for i := range trajs {
				for j := range trajs {
					want := 1.0
					if i < j {
						want = refTrajectorySimilarity(trajs[i], trajs[j], hashCellSim, w)
					} else if i > j {
						want = refTrajectorySimilarity(trajs[j], trajs[i], hashCellSim, w)
					}
					if got[i][j] != want {
						t.Fatalf("GOMAXPROCS=%d trial %d: m[%d][%d] = %v, legacy %v",
							p, trial, i, j, got[i][j], want)
					}
				}
			}
			// The scalar wrapper must agree too.
			if v := TrajectorySimilarity(trajs[0], trajs[1%len(trajs)], hashCellSim, w); v != got[0][1%len(trajs)] {
				t.Fatalf("TrajectorySimilarity wrapper diverged: %v vs %v", v, got[0][1%len(trajs)])
			}
		}
	})
}

func TestDifferentialKMedoidsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		sim := make([][]float64, n)
		for i := range sim {
			sim[i] = make([]float64, n)
			sim[i][i] = 1
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				sim[i][j], sim[j][i] = v, v
			}
		}
		k := 1 + rng.Intn(n)
		seed := rng.Int63()
		got := KMedoidsMatrix(sim, k, seed)
		want := refKMedoidsMatrix(sim, k, seed)
		if len(got.Medoids) != len(want.Medoids) {
			t.Fatalf("trial %d (n=%d k=%d): medoid counts %d vs %d", trial, n, k, len(got.Medoids), len(want.Medoids))
		}
		for i := range want.Medoids {
			if got.Medoids[i] != want.Medoids[i] {
				t.Fatalf("trial %d (n=%d k=%d seed=%d): medoids %v, legacy %v",
					trial, n, k, seed, got.Medoids, want.Medoids)
			}
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("trial %d (n=%d k=%d seed=%d): assign[%d] = %d, legacy %d",
					trial, n, k, seed, i, got.Assign[i], want.Assign[i])
			}
		}
	}
}

func TestDifferentialKMedoidsEndToEndAcrossGOMAXPROCS(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 8}, func(t *testing.T, p int) {
		rng := rand.New(rand.NewSource(900))
		trajs := randTrajs(rng, 24, randAlphabet(rng))
		simFn := func(a, b core.Trajectory) float64 {
			return TrajectorySimilarity(a, b, hashCellSim, 0.7)
		}
		got := KMedoids(trajs, 4, simFn, 11)
		c := NewCorpus(trajs)
		interned := c.KMedoids(c.CellTable(hashCellSim), 0.7, 4, 11)
		wantM := refKMedoidsMatrix(PairwiseMatrix(trajs, func(a, b core.Trajectory) float64 {
			return refTrajectorySimilarity(a, b, hashCellSim, 0.7)
		}), 4, 11)
		for i := range wantM.Medoids {
			if got.Medoids[i] != wantM.Medoids[i] || interned.Medoids[i] != wantM.Medoids[i] {
				t.Fatalf("GOMAXPROCS=%d: medoids %v / %v, legacy %v", p, got.Medoids, interned.Medoids, wantM.Medoids)
			}
		}
		for i := range wantM.Assign {
			if got.Assign[i] != wantM.Assign[i] || interned.Assign[i] != wantM.Assign[i] {
				t.Fatalf("GOMAXPROCS=%d: assignment diverged at %d", p, i)
			}
		}
	})
}
