package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sitm/internal/core"
)

// Clusters is a k-medoids assignment: Medoids holds the medoid index of
// each cluster; Assign maps every trajectory index to its cluster.
type Clusters struct {
	Medoids []int
	Assign  []int
}

// KMedoids clusters trajectories by the given pairwise similarity using the
// PAM-style alternating refinement, seeded deterministically. It is the
// visitor-profiling vehicle the paper sketches. The similarity matrix is
// computed in parallel via PairwiseMatrix; callers that already hold a
// matrix should use KMedoidsMatrix directly, and callers starting from
// trajectories should prefer the interned Corpus.KMedoids pipeline.
func KMedoids(trajs []core.Trajectory, k int, simFn func(a, b core.Trajectory) float64, seed int64) Clusters {
	if k <= 0 || len(trajs) == 0 {
		return Clusters{} // degenerate before paying for the O(n²) matrix
	}
	return KMedoidsMatrix(PairwiseMatrix(trajs, simFn), k, seed)
}

// KMedoidsMatrix clusters by a precomputed symmetric similarity matrix
// (sim[i][j] ∈ [0, 1], diagonal 1), using a seeded PAM refinement. The
// matrix must be square; a jagged hand-built matrix is a programmer error
// and panics with a clear message.
//
// The swap loop follows the FastPAM caching discipline (Schubert &
// Rousseeuw): every point caches its nearest-medoid distance d1, the
// position n1 of that medoid, and its second-nearest distance d2, so the
// cost of a candidate swap (medoid position c → cand) is one O(n) pass —
//
//	Σ_i min( n1[i]==c ? d2[i] : d1[i], dist(i, cand) )
//
// instead of the naive full reassignment's O(n·k). A full candidate sweep
// of one medoid position is therefore O(n²), not O(n²·k); the caches are
// rebuilt (O(n·k)) only when a swap is accepted. Membership tests use a
// bitset instead of a linear scan. The summands and their order are
// exactly the naive reassignment's, so the accept/reject sequence — and
// hence Medoids and Assign — is bit-for-bit the legacy greedy's
// (differential-tested against the naive implementation).
func KMedoidsMatrix(sim [][]float64, k int, seed int64) Clusters {
	n := len(sim)
	if k <= 0 || n == 0 {
		return Clusters{}
	}
	for i, row := range sim {
		if len(row) != n {
			panic(fmt.Sprintf("similarity: KMedoidsMatrix: row %d has %d entries, want %d (matrix must be square)", i, len(row), n))
		}
	}
	if k > n {
		k = n
	}
	// Distances (1 − similarity) drive the refinement; flat row-major
	// storage keeps the O(n) swap-cost pass on one cache stream.
	dist := make([]float64, n*n)
	for i, row := range sim {
		base := i * n
		for j, v := range row {
			if i != j {
				dist[base+j] = 1 - v
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	sort.Ints(medoids)
	isMedoid := make([]bool, n)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	assign := make([]int, n)
	d1 := make([]float64, n) // distance to the nearest medoid
	d2 := make([]float64, n) // distance to the second-nearest (+Inf when k == 1)
	n1 := make([]int, n)     // medoid position attaining d1 (first wins on ties)

	// refresh rebuilds the caches and assignment with the naive scan
	// (first strictly-smaller medoid position wins, like the legacy
	// assignAll) and returns the total cost — the same floats summed in
	// the same order.
	refresh := func() float64 {
		var total float64
		for i := 0; i < n; i++ {
			row := dist[i*n:]
			best, bestD := 0, row[medoids[0]]
			secondD := math.Inf(1)
			for c := 1; c < k; c++ {
				if d := row[medoids[c]]; d < bestD {
					secondD = bestD
					best, bestD = c, d
				} else if d < secondD {
					secondD = d
				}
			}
			assign[i] = best
			d1[i], d2[i], n1[i] = bestD, secondD, best
			total += bestD
		}
		return total
	}

	cost := refresh()
	for iter := 0; iter < 50; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if isMedoid[cand] {
					continue
				}
				// Swap cost from the caches: removing the medoid at
				// position c leaves min(d2, d(cand)) for its points and
				// min(d1, d(cand)) for everyone else — the same values a
				// full reassignment would sum, in the same order.
				var newCost float64
				for i := 0; i < n; i++ {
					dc := dist[i*n+cand]
					rest := d1[i]
					if n1[i] == c {
						rest = d2[i]
					}
					if dc < rest {
						rest = dc
					}
					newCost += rest
				}
				if newCost < cost-1e-12 {
					old := medoids[c]
					medoids[c] = cand
					isMedoid[old] = false
					isMedoid[cand] = true
					improved = true
					cost = refresh()
				}
			}
		}
		if !improved {
			break
		}
	}
	refresh()
	return Clusters{Medoids: medoids, Assign: assign}
}
