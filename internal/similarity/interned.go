package similarity

import (
	"sitm/internal/core"
	"sitm/internal/parallel"
	"sitm/internal/symtab"
)

// This file is the interned analytics core of the package: trajectories are
// dictionary-encoded once into dense int32 cell sequences and sorted
// annotation-pair id sets (Corpus), the cell-similarity kernel is
// precomputed into a dense k×k table (CellSimTable — one Depth/LCA walk per
// cell pair total, not per trajectory pair), and the sequence metrics run
// as two-row dynamic programs over flat scratch buffers reused across pairs
// (one scratch per worker via parallel.MapPairsSymmetricWith). The exported
// string APIs in similarity.go are thin wrappers over these kernels, and
// every kernel reproduces the legacy string path bit for bit: identical
// comparison order in the DPs, identical float expressions, identical
// tie-breaking (enforced by the differential tests in differential_test.go).

// Corpus is an interned view of a trajectory set: the substrate every bulk
// similarity/clustering call should run on. Build it once with NewCorpus,
// then reuse it (and a CellSimTable) across matrices, weights and k-sweeps.
// A Corpus is immutable after construction and safe for concurrent use.
type Corpus struct {
	dict *symtab.Dict
	seqs [][]int32 // interned Trace.Cells() per trajectory
	anns [][]int32 // sorted distinct interned (key,value) pair ids per trajectory
	max  int       // longest cell sequence; newScratch pre-sizes worker DP rows with it
}

// NewCorpus dictionary-encodes the trajectories: one dense id per distinct
// cell, one interned pair id per distinct (key, value) annotation pair.
func NewCorpus(trajs []core.Trajectory) *Corpus {
	c := &Corpus{dict: symtab.NewDict()}
	c.seqs = c.dict.EncodeAll(trajs)
	for _, s := range c.seqs {
		if len(s) > c.max {
			c.max = len(s)
		}
	}
	pairDict := symtab.NewDict()
	c.anns = make([][]int32, len(trajs))
	for i, t := range trajs {
		var ids []int32
		t.Ann.ForEachPair(func(k, v string) {
			ids = append(ids, pairDict.Intern(k+"\x00"+v))
		})
		// Sorted distinct: annotation pairs are a set (ForEachPair may
		// surface repeats stored by hand-built maps).
		c.anns[i] = symtab.SortDistinct(ids)
	}
	return c
}

// NewCorpusFromEncoded builds a Corpus from data that is already
// dictionary-encoded — the zero-re-encode handoff from the storage engine
// (store.Corpus). seqs must be interned cell sequences under dict (one per
// trajectory, in corpus order) and anns the matching sorted distinct
// annotation-pair id sets (interned under any one pair dictionary —
// Jaccard only counts id overlaps). maxLen must bound every sequence
// length; it sizes the per-worker DP scratch. The caller hands ownership
// of the slices over: a Corpus is immutable, so they must not be mutated
// afterwards (append-only stores sharing per-trajectory slices are fine).
func NewCorpusFromEncoded(dict *symtab.Dict, seqs, anns [][]int32, maxLen int) *Corpus {
	return &Corpus{dict: dict, seqs: seqs, anns: anns, max: maxLen}
}

// Dict exposes the cell dictionary (for building tables or decoding ids).
func (c *Corpus) Dict() *symtab.Dict { return c.dict }

// Len returns the number of trajectories in the corpus.
func (c *Corpus) Len() int { return len(c.seqs) }

// CellSimTable is a cell similarity precomputed over a dictionary: a dense
// k×k matrix of sim values indexed by interned cell ids. Building it costs
// one kernel call per ordered cell pair — for HierarchyCellSimilarity that
// is one Depth/LCA hierarchy walk per cell pair in the corpus alphabet,
// instead of one per occurrence inside every trajectory pair's O(L²) DTW.
// A table is bound to the dictionary it was built from: ids are assigned
// in first-intern order, so a table is meaningless under any other dict,
// and the corpus methods reject a foreign table with a clear panic instead
// of returning silently wrong similarities.
type CellSimTable struct {
	dict *symtab.Dict
	k    int
	vals []float64 // row-major k×k
}

// CellTable precomputes sim over the corpus's cell alphabet. sim must be
// pure; it is evaluated exactly once per ordered pair of distinct-by-id
// cells, and the stored values are the exact floats the legacy per-call
// path would have produced.
func (c *Corpus) CellTable(sim CellSimilarity) *CellSimTable {
	return NewCellSimTable(c.dict, sim)
}

// NewCellSimTable precomputes sim over every ordered pair of the
// dictionary's symbols. To use the table with a Corpus, d must be that
// corpus's Dict() (Corpus.CellTable is the shorthand).
func NewCellSimTable(d *symtab.Dict, sim CellSimilarity) *CellSimTable {
	k := d.Len()
	t := &CellSimTable{dict: d, k: k, vals: make([]float64, k*k)}
	for i := 0; i < k; i++ {
		a := d.Symbol(int32(i))
		row := t.vals[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			row[j] = sim(a, d.Symbol(int32(j)))
		}
	}
	return t
}

// At returns the precomputed similarity of two interned cells.
func (t *CellSimTable) At(a, b int32) float64 { return t.vals[int(a)*t.k+int(b)] }

// row returns the dense similarity row of one interned cell.
func (t *CellSimTable) row(a int32) []float64 { return t.vals[int(a)*t.k : (int(a)+1)*t.k] }

// scratch holds the flat DP rows one worker reuses across every pair it
// evaluates: two int32 rows for the counting DPs (edit, LCSS) and two
// cost/path-length row pairs for DTW. Rows grow on demand and are never
// shared between goroutines.
type scratch struct {
	irows [2][]int32
	costs [2][]float64
	plens [2][]int32
}

// newScratch returns a scratch pre-sized for sequences up to maxLen, so a
// worker never reallocates its rows mid-run.
func newScratch(maxLen int) *scratch {
	s := &scratch{}
	s.intRows(maxLen + 1)
	s.dtwRows(maxLen + 1)
	return s
}

// intRows returns two zero-ready int rows of length ≥ n.
func (s *scratch) intRows(n int) (prev, cur []int32) {
	if cap(s.irows[0]) < n {
		s.irows[0] = make([]int32, n)
		s.irows[1] = make([]int32, n)
	}
	return s.irows[0][:n], s.irows[1][:n]
}

// dtwRows returns the two cost rows and two path-length rows of length ≥ n.
func (s *scratch) dtwRows(n int) (prevC, curC []float64, prevL, curL []int32) {
	if cap(s.costs[0]) < n {
		s.costs[0] = make([]float64, n)
		s.costs[1] = make([]float64, n)
		s.plens[0] = make([]int32, n)
		s.plens[1] = make([]int32, n)
	}
	return s.costs[0][:n], s.costs[1][:n], s.plens[0][:n], s.plens[1][:n]
}

// editDistanceInt is the interned Levenshtein kernel: two int32 rows from
// the worker scratch, no allocation. Identical-sequence and empty-side
// cases exit before touching the DP (the only early-abandon the metric
// admits without a caller-provided cutoff).
//
//sitm:hotpath
func editDistanceInt(a, b []int32, s *scratch) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if int32Equal(a, b) {
		return 0
	}
	prev, cur := s.intRows(len(b) + 1)
	for j := range prev {
		prev[j] = int32(j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int32(i)
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := int32(1)
			if ai == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return int(prev[len(b)])
}

// lcssInt is the interned longest-common-subsequence kernel.
//
//sitm:hotpath
func lcssInt(a, b []int32, s *scratch) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev, cur := s.intRows(len(b) + 1)
	for j := range prev {
		prev[j] = 0
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			switch {
			case ai == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return int(prev[len(b)])
}

// int32Equal reports element-wise equality.
//
//sitm:hotpath
func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// dtwInt is the interned DTW kernel: local cost 1 − table[a_i][b_j], two
// cost rows plus two path-length rows from the worker scratch. The
// comparison order (diagonal, then above, then left, strict <) and the
// accumulation expressions mirror the legacy 2-D implementation exactly,
// so the result is bit-for-bit the legacy DTW value.
//
//sitm:hotpath
func dtwInt(a, b []int32, tab *CellSimTable, s *scratch) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	const inf = 1 << 30
	prevC, curC, prevL, curL := s.dtwRows(len(b) + 1)
	for j := range prevC {
		prevC[j] = inf
		prevL[j] = 0
	}
	prevC[0] = 0
	for i := 1; i <= len(a); i++ {
		curC[0] = inf
		curL[0] = 0
		row := tab.row(a[i-1])
		for j := 1; j <= len(b); j++ {
			local := 1 - row[b[j-1]]
			bc, bl := prevC[j-1], prevL[j-1]
			if prevC[j] < bc {
				bc, bl = prevC[j], prevL[j]
			}
			if curC[j-1] < bc {
				bc, bl = curC[j-1], curL[j-1]
			}
			curC[j] = bc + local
			curL[j] = bl + 1
		}
		prevC, curC = curC, prevC
		prevL, curL = curL, prevL
	}
	endC, endL := prevC[len(b)], prevL[len(b)]
	if endL == 0 {
		return 0
	}
	sim := 1 - endC/float64(endL)
	if sim < 0 {
		return 0
	}
	return sim
}

// jaccardSorted is Jaccard over two sorted distinct id sets by linear
// merge: the same |A∩B| / |A∪B| counts the legacy pair-map path produced,
// hence the same float.
//
//sitm:hotpath
func jaccardSorted(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// pairSimilarity is the combined trajectory kernel over interned data:
// DTW spatial + Jaccard semantic, blended by the (pre-clamped) weight.
//
//sitm:hotpath
func (c *Corpus) pairSimilarity(i, j int, tab *CellSimTable, w float64, s *scratch) float64 {
	spatial := dtwInt(c.seqs[i], c.seqs[j], tab, s)
	semantic := jaccardSorted(c.anns[i], c.anns[j])
	return w*spatial + (1-w)*semantic
}

// PairwiseMatrix computes the full n×n TrajectorySimilarity matrix over
// the corpus: upper triangle only, fanned out over the worker pool with
// one scratch per worker, mirrored, diagonal 1. The values are bit-for-bit
// what PairwiseMatrix(trajs, TrajectorySimilarity(..., sim, w)) returns on
// the original trajectories — at a fraction of the cost: no string
// comparisons, no per-pair allocation, one cell-similarity evaluation per
// cell pair in the whole run instead of per occurrence per trajectory pair.
func (c *Corpus) PairwiseMatrix(tab *CellSimTable, spatialWeight float64) [][]float64 {
	if tab.dict != c.dict {
		panic("similarity: CellSimTable built from a different dictionary than this corpus (use Corpus.CellTable)")
	}
	if spatialWeight < 0 {
		spatialWeight = 0
	}
	if spatialWeight > 1 {
		spatialWeight = 1
	}
	n := len(c.seqs)
	flat := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n]
		m[i][i] = 1
	}
	parallel.MapPairsSymmetricWith(n, func() *scratch { return newScratch(c.max) },
		func(s *scratch, i, j int) {
			v := c.pairSimilarity(i, j, tab, spatialWeight, s)
			m[i][j] = v
			m[j][i] = v
		})
	return m
}

// EditDistanceMatrix computes the pairwise Levenshtein distances of every
// trajectory cell sequence in the corpus: interned two-row DP, upper
// triangle over the pool with per-worker scratch, mirrored (diagonal 0).
func (c *Corpus) EditDistanceMatrix() [][]int {
	return c.intMetricMatrix(editDistanceInt)
}

// LCSSMatrix computes the pairwise longest-common-subsequence lengths of
// every trajectory cell sequence in the corpus; diagonal entries hold each
// sequence's own length (LCSS with itself).
func (c *Corpus) LCSSMatrix() [][]int {
	m := c.intMetricMatrix(lcssInt)
	for i := range m {
		m[i][i] = len(c.seqs[i])
	}
	return m
}

// intMetricMatrix runs an interned integer sequence kernel over the upper
// triangle with one scratch per worker, mirroring the result.
func (c *Corpus) intMetricMatrix(kernel func(a, b []int32, s *scratch) int) [][]int {
	n := len(c.seqs)
	flat := make([]int, n*n)
	m := make([][]int, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n]
	}
	parallel.MapPairsSymmetricWith(n, func() *scratch { return newScratch(c.max) },
		func(s *scratch, i, j int) {
			v := kernel(c.seqs[i], c.seqs[j], s)
			m[i][j] = v
			m[j][i] = v
		})
	return m
}

// KMedoids clusters the corpus end to end: interned pairwise matrix, then
// the cached-distance PAM refinement of KMedoidsMatrix.
func (c *Corpus) KMedoids(tab *CellSimTable, spatialWeight float64, k int, seed int64) Clusters {
	if k <= 0 || c.Len() == 0 {
		return Clusters{}
	}
	return KMedoidsMatrix(c.PairwiseMatrix(tab, spatialWeight), k, seed)
}
