package similarity

import (
	"testing"
	"testing/quick"
	"time"

	"sitm/internal/core"
	"sitm/internal/indoor"
	"sitm/internal/topo"
)

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"x"}, nil, 1},
		{nil, []string{"x", "y"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 0},
		{[]string{"a", "b", "c"}, []string{"a", "x", "c"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 2},
		{[]string{"a", "b", "c"}, []string{"b", "c"}, 1},
	}
	for _, tc := range tests {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := EditDistance(tc.b, tc.a); got != tc.want {
			t.Errorf("EditDistance must be symmetric for %v/%v", tc.a, tc.b)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity(nil, nil); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := EditSimilarity([]string{"a", "b"}, []string{"a", "b"}); got != 1 {
		t.Errorf("equal = %v", got)
	}
	if got := EditSimilarity([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestLCSS(t *testing.T) {
	tests := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a", "b", "c", "d"}, []string{"a", "c", "d"}, 3},
		{[]string{"a", "b"}, []string{"c", "d"}, 0},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 3},
		{[]string{"E", "P", "S", "C"}, []string{"E", "S", "C"}, 3},
	}
	for _, tc := range tests {
		if got := LCSS(tc.a, tc.b); got != tc.want {
			t.Errorf("LCSS(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := LCSS(tc.b, tc.a); got != tc.want {
			t.Errorf("LCSS must be symmetric for %v/%v", tc.a, tc.b)
		}
	}
	if got := LCSSSimilarity([]string{"a", "b"}, []string{"a"}); got != 1 {
		t.Errorf("LCSSSimilarity = %v", got)
	}
	if got := LCSSSimilarity(nil, []string{"a"}); got != 0 {
		t.Errorf("LCSSSimilarity empty = %v", got)
	}
	if got := LCSSSimilarity(nil, nil); got != 1 {
		t.Errorf("LCSSSimilarity both empty = %v", got)
	}
}

// hierGraph builds museum → wingA/wingB → rooms.
func hierGraph(t *testing.T) (*indoor.SpaceGraph, indoor.Hierarchy) {
	t.Helper()
	sg := indoor.NewSpaceGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sg.AddLayer(indoor.Layer{ID: "museum", Rank: 2}))
	must(sg.AddLayer(indoor.Layer{ID: "wing", Rank: 1}))
	must(sg.AddLayer(indoor.Layer{ID: "room", Rank: 0}))
	must(sg.AddCell(indoor.Cell{ID: "m", Layer: "museum"}))
	for _, w := range []string{"wingA", "wingB"} {
		must(sg.AddCell(indoor.Cell{ID: w, Layer: "wing"}))
		must(sg.AddJoint("m", w, topo.TPPi))
	}
	for room, wing := range map[string]string{"a1": "wingA", "a2": "wingA", "b1": "wingB"} {
		must(sg.AddCell(indoor.Cell{ID: room, Layer: "room"}))
		must(sg.AddJoint(wing, room, topo.TPPi))
	}
	return sg, indoor.Hierarchy{Layers: []string{"museum", "wing", "room"}}
}

func TestHierarchyCellSimilarity(t *testing.T) {
	sg, h := hierGraph(t)
	sim := HierarchyCellSimilarity(sg, h)
	if got := sim("a1", "a1"); got != 1 {
		t.Errorf("self = %v", got)
	}
	sameWing := sim("a1", "a2") // LCA = wingA at depth 1, both rooms depth 2: 2·1/4 = 0.5
	if sameWing != 0.5 {
		t.Errorf("same wing = %v, want 0.5", sameWing)
	}
	crossWing := sim("a1", "b1") // LCA = museum at depth 0: 0
	if crossWing != 0 {
		t.Errorf("cross wing = %v, want 0", crossWing)
	}
	if sameWing <= crossWing {
		t.Error("same-wing rooms must be more similar than cross-wing rooms")
	}
	if got := sim("a1", "ghost"); got != 0 {
		t.Errorf("unknown cell = %v", got)
	}
	// A room against its own wing: LCA is the wing.
	if got := sim("a1", "wingA"); got != 2.0/3 {
		t.Errorf("room vs wing = %v, want 2/3", got)
	}
}

func TestDTW(t *testing.T) {
	if got := DTW(nil, nil, ExactCellSimilarity); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := DTW([]string{"a"}, nil, ExactCellSimilarity); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := DTW([]string{"a", "b", "c"}, []string{"a", "b", "c"}, ExactCellSimilarity); got != 1 {
		t.Errorf("identical = %v", got)
	}
	// Time-warping: repeats do not hurt much.
	warped := DTW([]string{"a", "a", "b", "c"}, []string{"a", "b", "c"}, ExactCellSimilarity)
	if warped != 1 {
		t.Errorf("warped = %v, want 1 (repeats absorbed)", warped)
	}
	diff := DTW([]string{"a", "b"}, []string{"x", "y"}, ExactCellSimilarity)
	if diff != 0 {
		t.Errorf("disjoint = %v", diff)
	}
}

func TestDTWWithHierarchy(t *testing.T) {
	sg, h := hierGraph(t)
	sim := HierarchyCellSimilarity(sg, h)
	// Visiting sibling rooms is better than visiting another wing.
	sameWing := DTW([]string{"a1"}, []string{"a2"}, sim)
	crossWing := DTW([]string{"a1"}, []string{"b1"}, sim)
	if sameWing <= crossWing {
		t.Errorf("hierarchy-aware DTW: %v vs %v", sameWing, crossWing)
	}
}

func mkTraj(t *testing.T, mo string, ann core.Annotations, cells ...string) core.Trajectory {
	t.Helper()
	day := time.Date(2017, 3, 1, 10, 0, 0, 0, time.UTC)
	var tr core.Trace
	for i, c := range cells {
		tr = append(tr, core.PresenceInterval{
			Cell:  c,
			Start: day.Add(time.Duration(i) * time.Minute),
			End:   day.Add(time.Duration(i+1) * time.Minute),
		})
	}
	traj, err := core.NewTrajectory(mo, tr, ann)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestTrajectorySimilarity(t *testing.T) {
	buy := core.NewAnnotations("goal", "buy")
	visit := core.NewAnnotations("goal", "visit")
	a := mkTraj(t, "a", visit, "x", "y")
	b := mkTraj(t, "b", visit, "x", "y")
	c := mkTraj(t, "c", buy, "p", "q")
	if got := TrajectorySimilarity(a, b, ExactCellSimilarity, 0.5); got != 1 {
		t.Errorf("identical trajectories = %v", got)
	}
	if got := TrajectorySimilarity(a, c, ExactCellSimilarity, 0.5); got != 0 {
		t.Errorf("fully different = %v", got)
	}
	// Same path, different goal: spatial weight controls the blend.
	d := mkTraj(t, "d", buy, "x", "y")
	if got := TrajectorySimilarity(a, d, ExactCellSimilarity, 1); got != 1 {
		t.Errorf("spatial only = %v", got)
	}
	if got := TrajectorySimilarity(a, d, ExactCellSimilarity, 0); got != 0 {
		t.Errorf("semantic only = %v", got)
	}
	// Weights are clamped.
	if got := TrajectorySimilarity(a, d, ExactCellSimilarity, 7); got != 1 {
		t.Errorf("clamped weight = %v", got)
	}
}

func TestKMedoids(t *testing.T) {
	visit := core.NewAnnotations("goal", "visit")
	// Two obvious groups: x-walkers and p-walkers.
	trajs := []core.Trajectory{
		mkTraj(t, "a", visit, "x", "y", "z"),
		mkTraj(t, "b", visit, "x", "y", "z"),
		mkTraj(t, "c", visit, "x", "y"),
		mkTraj(t, "d", visit, "p", "q", "r"),
		mkTraj(t, "e", visit, "p", "q", "r"),
		mkTraj(t, "f", visit, "p", "q"),
	}
	simFn := func(a, b core.Trajectory) float64 {
		return TrajectorySimilarity(a, b, ExactCellSimilarity, 1)
	}
	cl := KMedoids(trajs, 2, simFn, 42)
	if len(cl.Medoids) != 2 {
		t.Fatalf("medoids = %v", cl.Medoids)
	}
	// The two groups must separate: 0,1,2 together and 3,4,5 together.
	if cl.Assign[0] != cl.Assign[1] || cl.Assign[1] != cl.Assign[2] {
		t.Errorf("x group split: %v", cl.Assign)
	}
	if cl.Assign[3] != cl.Assign[4] || cl.Assign[4] != cl.Assign[5] {
		t.Errorf("p group split: %v", cl.Assign)
	}
	if cl.Assign[0] == cl.Assign[3] {
		t.Errorf("groups merged: %v", cl.Assign)
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	visit := core.NewAnnotations("goal", "visit")
	trajs := []core.Trajectory{mkTraj(t, "a", visit, "x")}
	simFn := func(a, b core.Trajectory) float64 { return 1 }
	if cl := KMedoids(nil, 2, simFn, 1); len(cl.Medoids) != 0 {
		t.Error("empty input")
	}
	if cl := KMedoids(trajs, 0, simFn, 1); len(cl.Medoids) != 0 {
		t.Error("k=0")
	}
	if cl := KMedoids(trajs, 5, simFn, 1); len(cl.Medoids) != 1 {
		t.Error("k>n must clamp")
	}
}

func TestQuickEditDistanceTriangle(t *testing.T) {
	// Property: edit distance satisfies the triangle inequality.
	mk := func(xs []uint8) []string {
		out := make([]string, 0, len(xs)%8)
		for i := 0; i < len(xs) && i < 8; i++ {
			out = append(out, string(rune('a'+xs[i]%4)))
		}
		return out
	}
	f := func(xa, xb, xc []uint8) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLCSSBounds(t *testing.T) {
	// Property: 0 ≤ LCSS(a,b) ≤ min(len a, len b).
	mk := func(xs []uint8) []string {
		out := make([]string, 0, len(xs)%10)
		for i := 0; i < len(xs) && i < 10; i++ {
			out = append(out, string(rune('a'+xs[i]%3)))
		}
		return out
	}
	f := func(xa, xb []uint8) bool {
		a, b := mk(xa), mk(xb)
		l := LCSS(a, b)
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		return l >= 0 && l <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
