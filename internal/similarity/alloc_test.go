package similarity

import (
	"math/rand"
	"testing"
)

// TestPairwiseMatrixAllocsPerPairNearZero pins the allocation discipline of
// the interned pairwise pipeline: beyond the result matrix itself (one flat
// backing array + one row-header slice) and one scratch per worker, pairs
// must not allocate — the DP rows are reused across every pair a worker
// evaluates. AllocsPerRun runs under GOMAXPROCS=1, so the pool degrades to
// one sequential worker with exactly one scratch.
func TestPairwiseMatrixAllocsPerPairNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trajs := randTrajs(rng, 40, randAlphabet(rng))
	c := NewCorpus(trajs)
	tab := c.CellTable(hashCellSim)

	allocs := testing.AllocsPerRun(10, func() {
		c.PairwiseMatrix(tab, 0.7)
	})
	pairs := float64(40 * 39 / 2) // 780
	// Fixed costs: flat matrix + row headers + one worker scratch (≤ ~8
	// slices). Anything near the pair count means a per-pair regression.
	if allocs > 16 {
		t.Fatalf("PairwiseMatrix allocated %.0f times for %0.f pairs (%.3f per pair); want fixed costs only",
			allocs, pairs, allocs/pairs)
	}
}

// TestIntMetricMatrixAllocsPerPairNearZero: the bulk edit/LCSS matrices
// share the pairwise discipline — result storage plus one worker scratch,
// nothing per pair.
func TestIntMetricMatrixAllocsPerPairNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trajs := randTrajs(rng, 40, randAlphabet(rng))
	c := NewCorpus(trajs)
	for name, run := range map[string]func(){
		"EditDistanceMatrix": func() { c.EditDistanceMatrix() },
		"LCSSMatrix":         func() { c.LCSSMatrix() },
	} {
		if allocs := testing.AllocsPerRun(10, run); allocs > 16 {
			t.Fatalf("%s allocated %.0f times for 780 pairs; want fixed costs only", name, allocs)
		}
	}
}

// TestScalarWrappersStayLean: the single-pair string entry points must not
// regress to per-call corpus builds — a pair cannot amortise interning, so
// they run direct two-row DPs (a handful of row allocations).
func TestScalarWrappersStayLean(t *testing.T) {
	a := []string{"x", "y", "z", "x", "w", "y", "z", "q"}
	b := []string{"y", "x", "z", "w", "w", "q", "x"}
	if allocs := testing.AllocsPerRun(20, func() { EditDistance(a, b) }); allocs > 4 {
		t.Fatalf("EditDistance allocated %.0f times; want two DP rows", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { LCSS(a, b) }); allocs > 4 {
		t.Fatalf("LCSS allocated %.0f times; want two DP rows", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { DTW(a, b, ExactCellSimilarity) }); allocs > 8 {
		t.Fatalf("DTW allocated %.0f times; want four DP rows", allocs)
	}
}
