// Package graph provides the directed multigraph substrate used by the
// indoor space model: IndoorGML Node-Relation Graphs are multigraphs (two
// rooms may be connected by several doors), accessibility is directed
// (§3.2: one-way movement such as the Salle des États exit-only rule), and
// the layered space graph is an edge-coloured multigraph.
//
// Nodes are identified by strings. Edges carry a kind (colour), an optional
// identifier (e.g. a door name) and a weight. Iteration order is
// deterministic: nodes and edges are visited in insertion order.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is a directed edge of a multigraph.
type Edge struct {
	ID     string  // optional identifier, e.g. "door012"
	From   string  // source node
	To     string  // target node
	Kind   string  // edge colour, e.g. "accessibility" or "contains"
	Weight float64 // traversal cost; defaults to 1 when zero or negative
}

// cost returns the effective traversal weight.
func (e Edge) cost() float64 {
	if e.Weight <= 0 {
		return 1
	}
	return e.Weight
}

// Graph is a directed multigraph. The zero value is not usable; call New.
type Graph struct {
	nodes   []string
	nodeIdx map[string]int
	edges   []Edge
	out     map[string][]int // node -> indexes into edges
	in      map[string][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodeIdx: make(map[string]int),
		out:     make(map[string][]int),
		in:      make(map[string][]int),
	}
}

// ErrNodeExists is returned when adding a duplicate node.
var ErrNodeExists = errors.New("graph: node already exists")

// ErrNoNode is returned when an operation references an unknown node.
var ErrNoNode = errors.New("graph: no such node")

// ErrNoPath is returned when no path exists between the queried nodes.
var ErrNoPath = errors.New("graph: no path")

// AddNode inserts a node. Adding an existing node returns ErrNodeExists.
func (g *Graph) AddNode(id string) error {
	if _, ok := g.nodeIdx[id]; ok {
		return fmt.Errorf("%w: %q", ErrNodeExists, id)
	}
	g.nodeIdx[id] = len(g.nodes)
	g.nodes = append(g.nodes, id)
	return nil
}

// EnsureNode inserts the node if absent.
func (g *Graph) EnsureNode(id string) {
	if !g.HasNode(id) {
		_ = g.AddNode(id)
	}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodeIdx[id]
	return ok
}

// Nodes returns all node ids in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts a directed edge; endpoints are created if missing.
// Parallel edges are allowed (it is a multigraph).
func (g *Graph) AddEdge(e Edge) {
	g.EnsureNode(e.From)
	g.EnsureNode(e.To)
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], idx)
	g.in[e.To] = append(g.in[e.To], idx)
}

// AddBiEdge inserts the edge and its reverse (for symmetric relations such
// as adjacency and connectivity).
func (g *Graph) AddBiEdge(e Edge) {
	g.AddEdge(e)
	rev := e
	rev.From, rev.To = e.To, e.From
	g.AddEdge(rev)
}

// Edges returns a copy of all edges in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdges returns the edges leaving node id, in insertion order.
func (g *Graph) OutEdges(id string) []Edge {
	idxs := g.out[id]
	out := make([]Edge, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.edges[i])
	}
	return out
}

// InEdges returns the edges entering node id, in insertion order.
func (g *Graph) InEdges(id string) []Edge {
	idxs := g.in[id]
	out := make([]Edge, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.edges[i])
	}
	return out
}

// EdgesBetween returns all edges from a to b, in insertion order.
func (g *Graph) EdgesBetween(a, b string) []Edge {
	var out []Edge
	for _, i := range g.out[a] {
		if g.edges[i].To == b {
			out = append(out, g.edges[i])
		}
	}
	return out
}

// HasEdge reports whether at least one edge a→b exists.
func (g *Graph) HasEdge(a, b string) bool {
	for _, i := range g.out[a] {
		if g.edges[i].To == b {
			return true
		}
	}
	return false
}

// Successors returns the distinct successor nodes of id, in first-seen order.
func (g *Graph) Successors(id string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, i := range g.out[id] {
		to := g.edges[i].To
		if !seen[to] {
			seen[to] = true
			out = append(out, to)
		}
	}
	return out
}

// Predecessors returns the distinct predecessor nodes of id.
func (g *Graph) Predecessors(id string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, i := range g.in[id] {
		from := g.edges[i].From
		if !seen[from] {
			seen[from] = true
			out = append(out, from)
		}
	}
	return out
}

// OutDegree returns the number of edges leaving id.
func (g *Graph) OutDegree(id string) int { return len(g.out[id]) }

// InDegree returns the number of edges entering id.
func (g *Graph) InDegree(id string) int { return len(g.in[id]) }

// FilterKind returns a subgraph view containing all nodes but only the edges
// of the given kinds. The result is a new graph; mutations do not propagate.
func (g *Graph) FilterKind(kinds ...string) *Graph {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	f := New()
	for _, n := range g.nodes {
		f.EnsureNode(n)
	}
	for _, e := range g.edges {
		if want[e.Kind] {
			f.AddEdge(e)
		}
	}
	return f
}

// BFS traverses breadth-first from start and returns nodes in visit order.
// Returns ErrNoNode if start is unknown.
func (g *Graph) BFS(start string) ([]string, error) {
	if !g.HasNode(start) {
		return nil, fmt.Errorf("%w: %q", ErrNoNode, start)
	}
	visited := map[string]bool{start: true}
	order := []string{start}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.Successors(cur) {
			if !visited[next] {
				visited[next] = true
				order = append(order, next)
				queue = append(queue, next)
			}
		}
	}
	return order, nil
}

// DFS traverses depth-first from start and returns nodes in preorder.
func (g *Graph) DFS(start string) ([]string, error) {
	if !g.HasNode(start) {
		return nil, fmt.Errorf("%w: %q", ErrNoNode, start)
	}
	visited := make(map[string]bool)
	var order []string
	var rec func(string)
	rec = func(id string) {
		visited[id] = true
		order = append(order, id)
		for _, next := range g.Successors(id) {
			if !visited[next] {
				rec(next)
			}
		}
	}
	rec(start)
	return order, nil
}

// Reachable returns the set of nodes reachable from start (including start).
func (g *Graph) Reachable(start string) map[string]bool {
	order, err := g.BFS(start)
	if err != nil {
		return nil
	}
	set := make(map[string]bool, len(order))
	for _, n := range order {
		set[n] = true
	}
	return set
}

// Path is a weighted node sequence with the edges taken between consecutive
// nodes.
type Path struct {
	Nodes  []string
	Edges  []Edge
	Weight float64
}

// ShortestPath runs Dijkstra from src to dst using edge weights (weight ≤ 0
// counts as 1). Among equal-cost edges between the same pair, the first
// inserted wins, keeping results deterministic.
func (g *Graph) ShortestPath(src, dst string) (Path, error) {
	if !g.HasNode(src) {
		return Path{}, fmt.Errorf("%w: %q", ErrNoNode, src)
	}
	if !g.HasNode(dst) {
		return Path{}, fmt.Errorf("%w: %q", ErrNoNode, dst)
	}
	dist := map[string]float64{src: 0}
	prevEdge := map[string]Edge{}
	done := map[string]bool{}

	for {
		// Extract the unsettled node with minimal distance; linear scan is
		// fine at indoor-model scale (thousands of cells).
		cur, best := "", math.Inf(1)
		for n, d := range dist {
			if !done[n] && d < best {
				cur, best = n, d
			}
		}
		if cur == "" {
			break
		}
		if cur == dst {
			break
		}
		done[cur] = true
		for _, e := range g.OutEdges(cur) {
			nd := best + e.cost()
			if d, ok := dist[e.To]; !ok || nd < d {
				dist[e.To] = nd
				prevEdge[e.To] = e
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return Path{}, fmt.Errorf("%w: %s → %s", ErrNoPath, src, dst)
	}
	// Reconstruct.
	var p Path
	p.Weight = dist[dst]
	for at := dst; at != src; {
		e := prevEdge[at]
		p.Edges = append(p.Edges, e)
		p.Nodes = append(p.Nodes, at)
		at = e.From
	}
	p.Nodes = append(p.Nodes, src)
	reverseStrings(p.Nodes)
	reverseEdges(p.Edges)
	return p, nil
}

func reverseStrings(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []Edge) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// KShortestPaths returns up to k loopless shortest paths (Yen's algorithm)
// from src to dst, ordered by weight. Used by the trajectory inference to
// enumerate plausible undetected cell sequences between two detections.
func (g *Graph) KShortestPaths(src, dst string, k int) ([]Path, error) {
	first, err := g.ShortestPath(src, dst)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]

			banned := make(map[string]bool) // edge signatures removed
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					banned[edgeSig(p.Edges[i])] = true
				}
			}
			bannedNodes := make(map[string]bool)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				bannedNodes[n] = true
			}

			sub := g.without(banned, bannedNodes)
			spur, err := sub.ShortestPath(spurNode, dst)
			if err != nil {
				continue
			}
			total := Path{
				Nodes:  append(append([]string{}, rootNodes...), spur.Nodes[1:]...),
				Edges:  append(append([]Edge{}, rootEdges...), spur.Edges...),
				Weight: pathWeight(rootEdges) + spur.Weight,
			}
			if !containsPath(candidates, total) && !containsPath(paths, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return candidates[a].Weight < candidates[b].Weight
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func pathWeight(edges []Edge) float64 {
	var w float64
	for _, e := range edges {
		w += e.cost()
	}
	return w
}

func edgeSig(e Edge) string {
	return e.From + "\x00" + e.To + "\x00" + e.ID + "\x00" + e.Kind
}

func equalPrefix(nodes, prefix []string) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, p Path) bool {
	for _, q := range ps {
		if len(q.Nodes) == len(p.Nodes) {
			same := true
			for i := range q.Nodes {
				if q.Nodes[i] != p.Nodes[i] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

// without returns a copy of g with the given edge signatures and nodes
// removed.
func (g *Graph) without(bannedEdges map[string]bool, bannedNodes map[string]bool) *Graph {
	f := New()
	for _, n := range g.nodes {
		if !bannedNodes[n] {
			f.EnsureNode(n)
		}
	}
	for _, e := range g.edges {
		if bannedNodes[e.From] || bannedNodes[e.To] || bannedEdges[edgeSig(e)] {
			continue
		}
		f.AddEdge(e)
	}
	return f
}

// StronglyConnectedComponents returns the SCCs of the graph (Tarjan),
// each sorted, the list ordered by each component's smallest member.
func (g *Graph) StronglyConnectedComponents() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Successors(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// ErrCycle is returned by TopoSort on cyclic graphs.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order of the nodes, or ErrCycle. Among
// ready nodes, insertion order is preserved (deterministic).
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var ready []string
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, e := range g.OutEdges(n) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, ErrCycle
	}
	return order, nil
}

// Undirected returns a copy with every edge mirrored, for symmetric
// analyses (e.g. weak connectivity of an accessibility NRG).
func (g *Graph) Undirected() *Graph {
	f := New()
	for _, n := range g.nodes {
		f.EnsureNode(n)
	}
	for _, e := range g.edges {
		f.AddEdge(e)
		rev := e
		rev.From, rev.To = e.To, e.From
		f.AddEdge(rev)
	}
	return f
}

// ConnectedComponents returns the weakly connected components, each sorted,
// ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]string {
	u := g.Undirected()
	seen := make(map[string]bool)
	var comps [][]string
	for _, n := range u.nodes {
		if seen[n] {
			continue
		}
		order, _ := u.BFS(n)
		for _, m := range order {
			seen[m] = true
		}
		sort.Strings(order)
		comps = append(comps, order)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}
