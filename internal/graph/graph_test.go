package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func lineGraph(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddBiEdge(Edge{From: node(i), To: node(i + 1), Kind: "acc"})
	}
	return g
}

func node(i int) string { return string(rune('a' + i)) }

func TestAddNode(t *testing.T) {
	g := New()
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate add: %v", err)
	}
	g.EnsureNode("a") // no-op
	g.EnsureNode("b")
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if !g.HasNode("b") || g.HasNode("zz") {
		t.Error("HasNode wrong")
	}
}

func TestEdgesAndDegrees(t *testing.T) {
	g := New()
	g.AddEdge(Edge{ID: "door1", From: "r1", To: "r2", Kind: "acc"})
	g.AddEdge(Edge{ID: "door2", From: "r1", To: "r2", Kind: "acc"}) // parallel
	g.AddEdge(Edge{ID: "wall", From: "r2", To: "r3", Kind: "adj"})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if got := len(g.EdgesBetween("r1", "r2")); got != 2 {
		t.Errorf("parallel edges = %d", got)
	}
	if !g.HasEdge("r1", "r2") || g.HasEdge("r2", "r1") {
		t.Error("HasEdge direction wrong")
	}
	if g.OutDegree("r1") != 2 || g.InDegree("r2") != 2 || g.InDegree("r1") != 0 {
		t.Error("degrees wrong")
	}
	if got := g.Successors("r1"); len(got) != 1 || got[0] != "r2" {
		t.Errorf("Successors dedup = %v", got)
	}
	if got := g.Predecessors("r2"); len(got) != 1 || got[0] != "r1" {
		t.Errorf("Predecessors = %v", got)
	}
	if got := g.OutEdges("r1"); len(got) != 2 || got[0].ID != "door1" {
		t.Errorf("OutEdges order = %v", got)
	}
	if got := g.InEdges("r3"); len(got) != 1 || got[0].ID != "wall" {
		t.Errorf("InEdges = %v", got)
	}
}

func TestFilterKind(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b", Kind: "acc"})
	g.AddEdge(Edge{From: "a", To: "b", Kind: "adj"})
	g.AddEdge(Edge{From: "b", To: "c", Kind: "joint"})
	f := g.FilterKind("acc", "joint")
	if f.NumEdges() != 2 {
		t.Errorf("filtered edges = %d", f.NumEdges())
	}
	if f.NumNodes() != g.NumNodes() {
		t.Error("filter must keep all nodes")
	}
}

func TestBFSDFS(t *testing.T) {
	g := lineGraph(5) // a-b-c-d-e bidirectional
	order, err := g.BFS("a")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BFS order = %v", order)
		}
	}
	dfs, err := g.DFS("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(dfs) != 5 || dfs[0] != "a" {
		t.Errorf("DFS = %v", dfs)
	}
	if _, err := g.BFS("zz"); !errors.Is(err, ErrNoNode) {
		t.Error("BFS unknown start must fail")
	}
	if _, err := g.DFS("zz"); !errors.Is(err, ErrNoNode) {
		t.Error("DFS unknown start must fail")
	}
	if set := g.Reachable("c"); len(set) != 5 {
		t.Errorf("Reachable = %v", set)
	}
	if set := g.Reachable("zz"); set != nil {
		t.Error("Reachable from unknown node must be nil")
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b", Weight: 1})
	g.AddEdge(Edge{From: "b", To: "c", Weight: 1})
	g.AddEdge(Edge{From: "a", To: "c", Weight: 5})
	p, err := g.ShortestPath("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight != 2 || len(p.Nodes) != 3 || p.Nodes[1] != "b" {
		t.Errorf("path = %+v", p)
	}
	if len(p.Edges) != 2 || p.Edges[0].From != "a" || p.Edges[1].To != "c" {
		t.Errorf("path edges = %+v", p.Edges)
	}
	// Direction matters.
	if _, err := g.ShortestPath("c", "a"); !errors.Is(err, ErrNoPath) {
		t.Error("reverse path must not exist")
	}
	if _, err := g.ShortestPath("zz", "a"); !errors.Is(err, ErrNoNode) {
		t.Error("unknown src")
	}
	if _, err := g.ShortestPath("a", "zz"); !errors.Is(err, ErrNoNode) {
		t.Error("unknown dst")
	}
	// Trivial path.
	p, err = g.ShortestPath("a", "a")
	if err != nil || p.Weight != 0 || len(p.Nodes) != 1 {
		t.Errorf("self path = %+v, %v", p, err)
	}
}

func TestShortestPathDefaultWeight(t *testing.T) {
	g := lineGraph(4)
	p, err := g.ShortestPath("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight != 3 {
		t.Errorf("unit-weight path = %v", p.Weight)
	}
}

func TestKShortestPaths(t *testing.T) {
	// Diamond: a→b→d (2), a→c→d (2.5), a→d (4)
	g := New()
	g.AddEdge(Edge{From: "a", To: "b", Weight: 1})
	g.AddEdge(Edge{From: "b", To: "d", Weight: 1})
	g.AddEdge(Edge{From: "a", To: "c", Weight: 1.5})
	g.AddEdge(Edge{From: "c", To: "d", Weight: 1})
	g.AddEdge(Edge{From: "a", To: "d", Weight: 4})
	paths, err := g.KShortestPaths("a", "d", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Weight != 2 || paths[1].Weight != 2.5 || paths[2].Weight != 4 {
		t.Errorf("weights = %v %v %v", paths[0].Weight, paths[1].Weight, paths[2].Weight)
	}
	// Asking for more paths than exist returns what exists.
	paths, err = g.KShortestPaths("a", "d", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Errorf("exhaustive k-shortest = %d", len(paths))
	}
	if _, err := g.KShortestPaths("d", "a", 2); !errors.Is(err, ErrNoPath) {
		t.Error("no reverse path expected")
	}
}

func TestSCC(t *testing.T) {
	g := New()
	// Cycle a→b→c→a plus tail c→d.
	g.AddEdge(Edge{From: "a", To: "b"})
	g.AddEdge(Edge{From: "b", To: "c"})
	g.AddEdge(Edge{From: "c", To: "a"})
	g.AddEdge(Edge{From: "c", To: "d"})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("SCCs = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != "a" {
		t.Errorf("big SCC = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != "d" {
		t.Errorf("singleton SCC = %v", comps[1])
	}
}

func TestTopoSort(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "building", To: "floor"})
	g.AddEdge(Edge{From: "floor", To: "room"})
	g.AddEdge(Edge{From: "building", To: "room"})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["building"] > pos["floor"] || pos["floor"] > pos["room"] {
		t.Errorf("order = %v", order)
	}
	g.AddEdge(Edge{From: "room", To: "building"}) // cycle
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Error("cycle must be detected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b"})
	g.EnsureNode("z")
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || comps[1][0] != "z" {
		t.Errorf("components = %v", comps)
	}
}

func TestUndirected(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b"})
	u := g.Undirected()
	if !u.HasEdge("b", "a") || !u.HasEdge("a", "b") {
		t.Error("Undirected must mirror edges")
	}
	if g.HasEdge("b", "a") {
		t.Error("original must be untouched")
	}
}

func TestQuickBFSReachesAllOnRandomConnected(t *testing.T) {
	// Property: on a random connected (bidirectional spanning tree + extras)
	// graph, BFS from node 0 visits every node exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		g := New()
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
			g.EnsureNode(ids[i])
		}
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			g.AddBiEdge(Edge{From: ids[i], To: ids[j]})
		}
		for e := 0; e < n/2; e++ {
			g.AddBiEdge(Edge{From: ids[rng.Intn(n)], To: ids[rng.Intn(n)]})
		}
		order, err := g.BFS(ids[0])
		if err != nil {
			return false
		}
		seen := map[string]int{}
		for _, id := range order {
			seen[id]++
		}
		if len(order) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDijkstraTriangleInequality(t *testing.T) {
	// Property: shortest-path weights satisfy d(a,c) ≤ d(a,b) + d(b,c)
	// whenever all three paths exist.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 3
		g := New()
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A' + i))
			g.EnsureNode(ids[i])
		}
		for e := 0; e < n*2; e++ {
			g.AddEdge(Edge{
				From:   ids[rng.Intn(n)],
				To:     ids[rng.Intn(n)],
				Weight: float64(rng.Intn(9) + 1),
			})
		}
		a, b, c := ids[rng.Intn(n)], ids[rng.Intn(n)], ids[rng.Intn(n)]
		pab, err1 := g.ShortestPath(a, b)
		pbc, err2 := g.ShortestPath(b, c)
		pac, err3 := g.ShortestPath(a, c)
		if err1 != nil || err2 != nil || err3 != nil {
			return true // vacuously fine
		}
		return pac.Weight <= pab.Weight+pbc.Weight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKShortestSorted(t *testing.T) {
	// Property: KShortestPaths returns paths in non-decreasing weight and
	// the first equals Dijkstra's result.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 4
		g := New()
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A' + i))
			g.EnsureNode(ids[i])
		}
		for e := 0; e < n*3; e++ {
			g.AddEdge(Edge{
				From:   ids[rng.Intn(n)],
				To:     ids[rng.Intn(n)],
				Weight: float64(rng.Intn(5) + 1),
			})
		}
		src, dst := ids[0], ids[n-1]
		sp, err := g.ShortestPath(src, dst)
		if err != nil {
			return true
		}
		paths, err := g.KShortestPaths(src, dst, 4)
		if err != nil || len(paths) == 0 {
			return false
		}
		if paths[0].Weight != sp.Weight {
			return false
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Weight < paths[i-1].Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
