package core

import (
	"sort"
	"time"
)

// EpisodeSpec names one episode kind extracted online: every closed
// trajectory is scanned for maximal runs satisfying Pred (Def 3.4 via
// MaximalEpisodes) labelled Label with annotations Ann.
type EpisodeSpec struct {
	Label string
	Ann   Annotations
	Pred  IntervalPredicate
}

// StreamOptions tune the online segmenter.
type StreamOptions struct {
	// Build carries the batch extraction options (drop, merge, session gap,
	// trajectory annotations); the streaming and batch semantics are shared.
	Build BuildOptions
	// GapMinDur/GapClassifier, when either is set, run AnnotateGaps over
	// every closed trajectory's trace, so gap annotations are emitted the
	// moment a session closes. A nil classifier marks every gap a Hole.
	GapMinDur     time.Duration
	GapClassifier GapClassifier
	// Episodes are extracted from every closed trajectory and delivered to
	// OnEpisode.
	Episodes []EpisodeSpec
	// OnInterval observes every presence interval the moment it is final
	// (the MO moved on, or the session closed). Optional.
	OnInterval func(mo string, closed PresenceInterval)
	// OnEpisode observes every extracted episode. Optional.
	OnEpisode func(ep Episode)
}

// StreamSegmenter consumes raw timestamped cell detections incrementally —
// any interleaving of moving objects, non-decreasing start order per MO —
// and emits presence intervals, semantic trajectories, gap annotations and
// episodes as they close. It is the online counterpart of
// BuildTrajectories: both drive the same per-MO state machine, so feeding
// the same detections in any chunking yields the same trajectories the
// batch builder produces (chunk boundaries carry no state).
//
// The segmenter is not safe for concurrent use; callers ingesting from
// multiple goroutines serialize Observe (the Ingestor does).
type StreamSegmenter struct {
	opts   StreamOptions
	ann    Annotations
	accums map[string]*sessionAccum
	events map[string][]streamEvent
	stats  BuildStats
	closed int
}

// streamEvent is one pending §3.3 semantic event: at time t the MO's
// annotation state becomes after.
type streamEvent struct {
	at    time.Time
	after Annotations
}

// NewStreamSegmenter returns an online segmenter.
func NewStreamSegmenter(opts StreamOptions) *StreamSegmenter {
	return &StreamSegmenter{
		opts:   opts,
		ann:    defaultBuildAnn(opts.Build),
		accums: make(map[string]*sessionAccum),
		events: make(map[string][]streamEvent),
	}
}

// Observe consumes one detection. When its arrival closes a session (the
// session-gap rule fired), the finished trajectory — event-split, gap
// annotated, episode-scanned per the options — is returned with ok = true.
func (s *StreamSegmenter) Observe(d Detection) (closed Trajectory, ok bool) {
	s.stats.Input++
	acc := s.accums[d.MO]
	if acc == nil {
		acc = &sessionAccum{
			mo:         d.MO,
			opts:       s.opts.Build,
			ann:        s.ann,
			stats:      &s.stats,
			onInterval: s.opts.OnInterval,
		}
		s.accums[d.MO] = acc
	}
	t, ok := acc.observe(d)
	if !ok {
		return Trajectory{}, false
	}
	return s.finalize(t), true
}

// ObserveAll consumes a chunk of detections and returns the trajectories
// the chunk closed, in closure order.
func (s *StreamSegmenter) ObserveAll(dets []Detection) []Trajectory {
	var out []Trajectory
	for _, d := range dets {
		if t, ok := s.Observe(d); ok {
			out = append(out, t)
		}
	}
	return out
}

// MarkEvent records a §3.3 semantic event for an MO: when the session
// containing time at closes, the presence interval covering at is split
// there (Trace.SplitAt semantics — same cell, no entering transition) and
// the second part carries the after annotations. Events falling into
// inter-detection gaps are discarded; events later than every closed
// interval stay pending for the next trajectory.
func (s *StreamSegmenter) MarkEvent(mo string, at time.Time, after Annotations) {
	evs := append(s.events[mo], streamEvent{at: at, after: after})
	if len(evs) > maxPendingEvents {
		evs = evs[len(evs)-maxPendingEvents:]
	}
	s.events[mo] = evs
}

// Flush closes every open session and returns the finished trajectories
// sorted by MO (deterministic end-of-feed order). All per-MO state —
// session accumulators and pending semantic events — is released, so a
// long-running feed that flushes at checkpoints keeps the segmenter's
// memory bounded by its open sessions, not by the number of MOs ever
// seen. Events still future-dated at flush time are discarded with the
// checkpoint (re-mark them afterwards if they must survive one).
func (s *StreamSegmenter) Flush() []Trajectory {
	mos := make([]string, 0, len(s.accums))
	for mo := range s.accums {
		mos = append(mos, mo)
	}
	sort.Strings(mos)
	var out []Trajectory
	for _, mo := range mos {
		if t, ok := s.accums[mo].flush(); ok {
			out = append(out, s.finalize(t))
		}
		delete(s.accums, mo)
	}
	s.events = make(map[string][]streamEvent)
	return out
}

// maxPendingEvents bounds the per-MO queue of future-dated semantic
// events; without it a stray MarkEvent for an MO that never reappears
// would be retained forever. Oldest events are dropped first.
const maxPendingEvents = 64

// Stats returns the running extraction statistics; Trajectories counts the
// sessions closed so far (including flushed ones).
func (s *StreamSegmenter) Stats() BuildStats {
	st := s.stats
	st.Trajectories = s.closed
	return st
}

// OpenSessions returns the number of MOs with a non-empty running session.
func (s *StreamSegmenter) OpenSessions() int {
	n := 0
	for _, acc := range s.accums {
		if len(acc.trace) > 0 {
			n++
		}
	}
	return n
}

// finalize applies the closing-time enrichment to a finished trajectory:
// pending semantic events (SplitAt), gap annotation (AnnotateGaps) and
// episode extraction (MaximalEpisodes per spec).
func (s *StreamSegmenter) finalize(t Trajectory) Trajectory {
	if evs := s.events[t.MO]; len(evs) > 0 {
		var pending []streamEvent
		end := t.End()
		for _, ev := range evs {
			if ev.at.After(end) {
				pending = append(pending, ev)
				continue
			}
			for i, p := range t.Trace {
				if ev.at.After(p.Start) && ev.at.Before(p.End) {
					if split, err := t.Trace.SplitAt(i, ev.at, ev.after); err == nil {
						t.Trace = split
					}
					break
				}
			}
		}
		if len(pending) > 0 {
			s.events[t.MO] = pending
		} else {
			delete(s.events, t.MO)
		}
	}
	if s.opts.GapClassifier != nil || s.opts.GapMinDur > 0 {
		t.Trace = AnnotateGaps(t.Trace, s.opts.GapMinDur, s.opts.GapClassifier)
	}
	if s.opts.OnEpisode != nil {
		for _, spec := range s.opts.Episodes {
			for _, ep := range MaximalEpisodes(t, spec.Pred, spec.Label, spec.Ann) {
				s.opts.OnEpisode(ep)
			}
		}
	}
	s.closed++
	return t
}
