package core

import (
	"testing"
	"testing/quick"
)

func TestNewAnnotations(t *testing.T) {
	a := NewAnnotations("goals", "visit", "goals", "buy", "mood", "curious")
	if !a.Has("goals", "visit") || !a.Has("goals", "buy") || !a.Has("mood", "curious") {
		t.Error("Has failed")
	}
	if a.Has("goals", "sleep") || a.Has("none", "x") {
		t.Error("Has false positive")
	}
	if !a.HasKey("goals") || a.HasKey("none") {
		t.Error("HasKey wrong")
	}
	if got := a.Values("goals"); len(got) != 2 || got[0] != "visit" {
		t.Errorf("Values = %v", got)
	}
	if got := a.Keys(); len(got) != 2 || got[0] != "goals" || got[1] != "mood" {
		t.Errorf("Keys = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd pair count must panic")
		}
	}()
	NewAnnotations("only-key")
}

func TestAnnotationsAddDedup(t *testing.T) {
	a := Annotations{}
	a.Add("k", "v")
	a.Add("k", "v")
	if len(a["k"]) != 1 {
		t.Errorf("duplicate value stored: %v", a["k"])
	}
}

func TestAnnotationsEmptyCloneMerge(t *testing.T) {
	var nilAnn Annotations
	if !nilAnn.IsEmpty() {
		t.Error("nil is empty")
	}
	if nilAnn.Clone() != nil {
		t.Error("nil clones to nil")
	}
	a := NewAnnotations("k", "1")
	m := nilAnn.Merge(a)
	if !m.Has("k", "1") {
		t.Error("merge into nil failed")
	}
	b := a.Merge(NewAnnotations("k", "2", "j", "x"))
	if !b.Has("k", "1") || !b.Has("k", "2") || !b.Has("j", "x") {
		t.Error("merge union failed")
	}
	if a.Has("k", "2") {
		t.Error("merge must not mutate receiver")
	}
	c := a.Clone()
	c.Add("k", "3")
	if a.Has("k", "3") {
		t.Error("clone must be deep")
	}
}

func TestAnnotationsEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Annotations
		want bool
	}{
		{"both empty", Annotations{}, nil, true},
		{"same", NewAnnotations("g", "v"), NewAnnotations("g", "v"), true},
		{"order-insensitive", NewAnnotations("g", "a", "g", "b"), NewAnnotations("g", "b", "g", "a"), true},
		{"different value", NewAnnotations("g", "v"), NewAnnotations("g", "w"), false},
		{"subset", NewAnnotations("g", "v"), NewAnnotations("g", "v", "g", "w"), false},
		{"different key", NewAnnotations("g", "v"), NewAnnotations("h", "v"), false},
		{"empty-valued key ignored", Annotations{"g": nil}, Annotations{}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Equal(tc.b); got != tc.want {
				t.Errorf("Equal = %v, want %v", got, tc.want)
			}
			if got := tc.b.Equal(tc.a); got != tc.want {
				t.Errorf("Equal (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAnnotationsJaccard(t *testing.T) {
	a := NewAnnotations("g", "v", "g", "w")
	b := NewAnnotations("g", "v")
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %v", got)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Errorf("self Jaccard = %v", got)
	}
	if got := (Annotations{}).Jaccard(nil); got != 1 {
		t.Errorf("empty Jaccard = %v", got)
	}
	if got := a.Jaccard(NewAnnotations("x", "y")); got != 0 {
		t.Errorf("disjoint Jaccard = %v", got)
	}
}

func TestAnnotationsForEachPair(t *testing.T) {
	a := NewAnnotations("g", "v", "g", "w", "act", "walk")
	var got []string
	a.ForEachPair(func(k, v string) { got = append(got, k+"="+v) })
	want := []string{"act=walk", "g=v", "g=w"} // keys sorted, values in order
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", got, want)
		}
	}
	(Annotations{}).ForEachPair(func(k, v string) { t.Error("empty set yielded a pair") })
}

func TestAnnotationsString(t *testing.T) {
	if got := (Annotations{}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	a := NewAnnotations("goals", "visit", "goals", "buy")
	if got := a.String(); got != "{goals:[visit,buy]}" {
		t.Errorf("String = %q", got)
	}
}

func TestQuickAnnotationsMergeIdempotent(t *testing.T) {
	// Property: a.Merge(a) equals a.
	f := func(keys, vals []uint8) bool {
		a := Annotations{}
		for i := range keys {
			v := "v"
			if i < len(vals) {
				v = string(rune('a' + vals[i]%26))
			}
			a.Add(string(rune('k'+keys[i]%4)), v)
		}
		return a.Merge(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnnotationsJaccardSymmetric(t *testing.T) {
	f := func(ka, va, kb, vb []uint8) bool {
		mk := func(ks, vs []uint8) Annotations {
			a := Annotations{}
			for i := range ks {
				v := "v"
				if i < len(vs) {
					v = string(rune('a' + vs[i]%6))
				}
				a.Add(string(rune('k'+ks[i]%3)), v)
			}
			return a
		}
		a, b := mk(ka, va), mk(kb, vb)
		return a.Jaccard(b) == b.Jaccard(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
