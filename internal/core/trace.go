package core

import (
	"errors"
	"fmt"
	"time"

	"sitm/internal/indoor"
)

// PresenceInterval is one tuple (e_i, v_i, tstart_i, tend_i, A_i) of a
// semantic trajectory trace (Def 3.2): the MO entered cell Cell through
// Transition (the boundary crossed — which door, staircase or elevator;
// empty when unknown or for the first tuple), stayed from Start to End, and
// the stay carries annotations Ann. TransitionAnn carries annotations on
// the transition itself (footnote 2's e^sem_i extension).
type PresenceInterval struct {
	Transition    string
	Cell          string
	Start, End    time.Time
	Ann           Annotations
	TransitionAnn Annotations
}

// Duration returns the stay duration.
func (p PresenceInterval) Duration() time.Duration { return p.End.Sub(p.Start) }

// String renders the tuple in the paper's notation:
// (door012, hall003, 11:32:31, 11:40:00, ∅).
func (p PresenceInterval) String() string {
	tr := p.Transition
	if tr == "" {
		tr = "_"
	}
	return fmt.Sprintf("(%s, %s, %s, %s, %s)",
		tr, p.Cell, p.Start.Format("15:04:05"), p.End.Format("15:04:05"), p.Ann)
}

// Trace is the spatiotemporal aspect of a semantic trajectory: a sequence
// of presence intervals ordered by start time.
type Trace []PresenceInterval

// Errors reported by trace validation.
var (
	ErrEmptyTrace       = errors.New("core: empty trace")
	ErrIntervalInverted = errors.New("core: presence interval ends before it starts")
	ErrOutOfOrder       = errors.New("core: presence intervals out of order")
	ErrOverlap          = errors.New("core: presence intervals overlap")
)

// ValidateOptions tunes trace validation. Raw indoor tracking commonly
// yields slightly overlapping consecutive stays (sensor detection areas
// overlap — the paper's own trace example overlaps by 4 s), so overlap
// tolerance is configurable.
type ValidateOptions struct {
	// AllowOverlap tolerates consecutive intervals whose time spans overlap
	// by at most MaxOverlap (0 means any overlap length).
	AllowOverlap bool
	MaxOverlap   time.Duration
}

// Validate checks ordering invariants: every interval has Start ≤ End, and
// consecutive intervals have non-decreasing starts; overlaps are rejected
// unless allowed by opts.
func (tr Trace) Validate(opts ValidateOptions) error {
	if len(tr) == 0 {
		return ErrEmptyTrace
	}
	for i, p := range tr {
		if p.End.Before(p.Start) {
			return fmt.Errorf("%w: tuple %d (%s)", ErrIntervalInverted, i, p.Cell)
		}
		if i == 0 {
			continue
		}
		prev := tr[i-1]
		if p.Start.Before(prev.Start) {
			return fmt.Errorf("%w: tuple %d starts before tuple %d", ErrOutOfOrder, i, i-1)
		}
		if p.Start.Before(prev.End) {
			overlap := prev.End.Sub(p.Start)
			if !opts.AllowOverlap || (opts.MaxOverlap > 0 && overlap > opts.MaxOverlap) {
				return fmt.Errorf("%w: tuples %d/%d overlap by %v", ErrOverlap, i-1, i, overlap)
			}
		}
	}
	return nil
}

// Start returns the trace's first start time (zero for empty traces).
func (tr Trace) Start() time.Time {
	if len(tr) == 0 {
		return time.Time{}
	}
	return tr[0].Start
}

// End returns the trace's last end time (zero for empty traces).
func (tr Trace) End() time.Time {
	if len(tr) == 0 {
		return time.Time{}
	}
	end := tr[0].End
	for _, p := range tr[1:] {
		if p.End.After(end) {
			end = p.End
		}
	}
	return end
}

// Duration returns End − Start.
func (tr Trace) Duration() time.Duration { return tr.End().Sub(tr.Start()) }

// Cells returns the cell sequence of the trace (with consecutive
// duplicates preserved).
func (tr Trace) Cells() []string {
	out := make([]string, len(tr))
	for i, p := range tr {
		out[i] = p.Cell
	}
	return out
}

// DistinctCells returns the set of visited cells in first-visit order.
func (tr Trace) DistinctCells() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range tr {
		if !seen[p.Cell] {
			seen[p.Cell] = true
			out = append(out, p.Cell)
		}
	}
	return out
}

// TimeIn returns the total presence duration accumulated in the given cell.
func (tr Trace) TimeIn(cell string) time.Duration {
	var d time.Duration
	for _, p := range tr {
		if p.Cell == cell {
			d += p.Duration()
		}
	}
	return d
}

// Transitions returns the number of cell changes in the trace (tuples whose
// cell differs from the previous tuple's cell).
func (tr Trace) Transitions() int {
	n := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].Cell != tr[i-1].Cell {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the trace.
func (tr Trace) Clone() Trace {
	out := make(Trace, len(tr))
	for i, p := range tr {
		p.Ann = p.Ann.Clone()
		p.TransitionAnn = p.TransitionAnn.Clone()
		out[i] = p
	}
	return out
}

// SplitAt implements the event-based model of §3.3: the interval at index i
// is split at time t; the first part keeps the original annotations, the
// second part — same cell, no entering transition — carries after. The
// paper's example: a visitor's goal set changes from {visit} to
// {visit,buy} while staying in room006.
func (tr Trace) SplitAt(i int, t time.Time, after Annotations) (Trace, error) {
	if i < 0 || i >= len(tr) {
		return nil, fmt.Errorf("core: split index %d out of range [0,%d)", i, len(tr))
	}
	p := tr[i]
	if !t.After(p.Start) || !t.Before(p.End) {
		return nil, fmt.Errorf("core: split time %s outside (%s, %s)",
			t.Format(time.RFC3339), p.Start.Format(time.RFC3339), p.End.Format(time.RFC3339))
	}
	out := make(Trace, 0, len(tr)+1)
	out = append(out, tr[:i]...)
	first := p
	first.End = t
	second := PresenceInterval{
		Transition: "", // no physical transition: a semantic event
		Cell:       p.Cell,
		Start:      t,
		End:        p.End,
		Ann:        after.Clone(),
	}
	out = append(out, first, second)
	out = append(out, tr[i+1:]...)
	return out, nil
}

// Coalesce merges consecutive tuples that share the same cell and equal
// annotations (the inverse of event-splitting), keeping the first tuple's
// transition. Tuples must be contiguous (second starts when first ends).
func (tr Trace) Coalesce() Trace {
	if len(tr) == 0 {
		return nil
	}
	out := Trace{tr[0]}
	for _, p := range tr[1:] {
		last := &out[len(out)-1]
		if p.Cell == last.Cell && p.Ann.Equal(last.Ann) && !p.Start.After(last.End) {
			if p.End.After(last.End) {
				last.End = p.End
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// CheckAccessibility verifies every cell change of the trace against the
// space graph's directed accessibility NRG and returns the violating tuple
// indexes (empty when the trace is topologically plausible). The Figure 6
// workflow uses this to spot detection gaps: E→S with no E→S edge.
func (tr Trace) CheckAccessibility(sg *indoor.SpaceGraph) []int {
	var bad []int
	for i := 1; i < len(tr); i++ {
		if tr[i].Cell == tr[i-1].Cell {
			continue
		}
		if !sg.Accessible(tr[i-1].Cell, tr[i].Cell) {
			bad = append(bad, i)
		}
	}
	return bad
}

// String renders the trace in the paper's set notation.
func (tr Trace) String() string {
	s := "{ "
	for i, p := range tr {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + " }"
}
