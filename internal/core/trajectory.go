package core

import (
	"errors"
	"fmt"
	"time"

	"sitm/internal/indoor"
)

// Trajectory is a semantic trajectory per Definition 3.1: the couple of a
// spatiotemporal trace and a non-empty set of semantic annotations
// describing the trajectory in its entirety (typically an activity, a
// behavior, or a goal).
//
// T_{IDmo, tstart, tend} = (trace_{IDmo, tstart, tend}, A_traj)
type Trajectory struct {
	MO    string // IDmo, the moving-object identifier
	Trace Trace
	Ann   Annotations // A_traj — must be non-empty (Def 3.1)
}

// Errors reported by trajectory construction and validation.
var (
	ErrNoMO             = errors.New("core: trajectory requires a moving object id")
	ErrNoTrajectoryAnn  = errors.New("core: Def 3.1 requires a non-empty annotation set")
	ErrNotSubtrajectory = errors.New("core: not a proper subtrajectory")
	ErrEpisodeSameAnn   = errors.New("core: episode annotations must differ from the trajectory's (Def 3.4)")
	ErrEpisodePredicate = errors.New("core: episode predicate not satisfied (Def 3.4)")
	ErrUnknownCell      = errors.New("core: trace references unknown cell")
	ErrWrongLayer       = errors.New("core: trace cell outside expected layer")
)

// NewTrajectory builds and validates a semantic trajectory. The trace must
// be non-empty and well-ordered (overlaps tolerated per the paper's own
// example), and the annotation set non-empty.
func NewTrajectory(mo string, trace Trace, ann Annotations) (Trajectory, error) {
	if mo == "" {
		return Trajectory{}, ErrNoMO
	}
	if err := trace.Validate(ValidateOptions{AllowOverlap: true}); err != nil {
		return Trajectory{}, err
	}
	if ann.IsEmpty() {
		return Trajectory{}, ErrNoTrajectoryAnn
	}
	return Trajectory{MO: mo, Trace: trace, Ann: ann}, nil
}

// Start returns tstart — the trajectory's starting timestamp.
func (t Trajectory) Start() time.Time { return t.Trace.Start() }

// End returns tend — the trajectory's ending timestamp.
func (t Trajectory) End() time.Time { return t.Trace.End() }

// Duration returns tend − tstart.
func (t Trajectory) Duration() time.Duration { return t.Trace.Duration() }

// String renders the trajectory header in the paper's notation.
func (t Trajectory) String() string {
	return fmt.Sprintf("T[%s, %s → %s] ann=%s trace=%s",
		t.MO, t.Start().Format("15:04:05"), t.End().Format("15:04:05"), t.Ann, t.Trace)
}

// Subtrajectory extracts tuples [i, j) as a semantic subtrajectory
// (Def 3.3) with its own annotation set (which may equal the parent's —
// the paper explicitly allows this, contrary to CONSTAnT). The extraction
// must be proper: a strict subsequence, not the whole trace.
func (t Trajectory) Subtrajectory(i, j int, ann Annotations) (Trajectory, error) {
	if i < 0 || j > len(t.Trace) || i >= j {
		return Trajectory{}, fmt.Errorf("%w: range [%d,%d) of %d tuples", ErrNotSubtrajectory, i, j, len(t.Trace))
	}
	if j-i == len(t.Trace) {
		return Trajectory{}, fmt.Errorf("%w: whole trace is not a proper subsequence", ErrNotSubtrajectory)
	}
	if ann.IsEmpty() {
		return Trajectory{}, ErrNoTrajectoryAnn
	}
	return Trajectory{MO: t.MO, Trace: t.Trace[i:j:j].Clone(), Ann: ann}, nil
}

// IsSubtrajectoryOf reports whether t is a proper subtrajectory of parent
// per Def 3.3: same MO, t's trace is a contiguous subsequence of parent's,
// and the time window is strictly smaller on at least one side:
// tstart ≤ t'start < t'end < tend  or  tstart < t'start < t'end ≤ tend.
func (t Trajectory) IsSubtrajectoryOf(parent Trajectory) bool {
	if t.MO != parent.MO || len(t.Trace) == 0 || len(t.Trace) >= len(parent.Trace) {
		return false
	}
	// Find the contiguous match.
	match := -1
	for off := 0; off+len(t.Trace) <= len(parent.Trace); off++ {
		ok := true
		for k := range t.Trace {
			if !sameTuple(parent.Trace[off+k], t.Trace[k]) {
				ok = false
				break
			}
		}
		if ok {
			match = off
			break
		}
	}
	if match < 0 {
		return false
	}
	ts, te := parent.Start(), parent.End()
	s, e := t.Start(), t.End()
	caseA := !s.Before(ts) && s.Before(e) && e.Before(te)
	caseB := s.After(ts) && s.Before(e) && !e.After(te)
	return caseA || caseB
}

func sameTuple(a, b PresenceInterval) bool {
	return a.Cell == b.Cell && a.Transition == b.Transition &&
		a.Start.Equal(b.Start) && a.End.Equal(b.End)
}

// ValidateAgainst checks the trace against a space graph: all cells must
// exist; when layer is non-empty they must belong to that layer; when
// strict is true every cell change must follow a directed accessibility
// edge.
func (t Trajectory) ValidateAgainst(sg *indoor.SpaceGraph, layer string, strict bool) error {
	for i, p := range t.Trace {
		c, ok := sg.Cell(p.Cell)
		if !ok {
			return fmt.Errorf("%w: tuple %d cell %q", ErrUnknownCell, i, p.Cell)
		}
		if layer != "" && c.Layer != layer {
			return fmt.Errorf("%w: tuple %d cell %q in layer %q, want %q",
				ErrWrongLayer, i, p.Cell, c.Layer, layer)
		}
	}
	if strict {
		if bad := t.Trace.CheckAccessibility(sg); len(bad) > 0 {
			return fmt.Errorf("core: %d inaccessible transitions (first at tuple %d: %s → %s)",
				len(bad), bad[0], t.Trace[bad[0]-1].Cell, t.Trace[bad[0]].Cell)
		}
	}
	return nil
}

// RollUp maps the trajectory to a coarser layer of the space graph through
// the hierarchy's parent links (§3.2: a static layer hierarchy allows
// identifying room-level patterns and floor-level patterns from the same
// dataset). Consecutive tuples that land in the same ancestor cell are
// coalesced, accumulating the time span and merging stay annotations; the
// first entering transition is kept.
func (t Trajectory) RollUp(sg *indoor.SpaceGraph, targetLayer string) (Trajectory, error) {
	out := make(Trace, 0, len(t.Trace))
	for i, p := range t.Trace {
		anc, ok := sg.AncestorAt(p.Cell, targetLayer)
		if !ok {
			return Trajectory{}, fmt.Errorf("core: tuple %d cell %q has no ancestor in layer %q",
				i, p.Cell, targetLayer)
		}
		q := p
		q.Cell = anc
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Cell == anc {
				if q.End.After(last.End) {
					last.End = q.End
				}
				last.Ann = last.Ann.Merge(q.Ann)
				continue
			}
		}
		out = append(out, q)
	}
	return Trajectory{MO: t.MO, Trace: out, Ann: t.Ann.Clone()}, nil
}
