package core

import (
	"time"

	"sitm/internal/indoor"
)

// ExitAwareClassifier builds a GapClassifier that uses cell semantics the
// way §4.2 describes: "we know that the visitor disappearing after
// Zone60890 is normal because it is one of the Louvre's exit zones". A gap
// is a SemanticGap (the MO plausibly left on purpose) when the cell before
// the gap is an exit/entrance cell, or when the gap is so long that only
// leaving explains it; otherwise it is an accidental Hole (sensor coverage
// gap, app dropout).
//
// isExit decides exit-ness per cell id; when nil, cells whose Attrs carry
// exit="true" or entrance="true" in the space graph count as exits.
// longGap is the duration beyond which any gap counts as semantic
// (0 disables the duration rule).
func ExitAwareClassifier(sg *indoor.SpaceGraph, isExit func(cell string) bool, longGap time.Duration) GapClassifier {
	if isExit == nil {
		isExit = func(cell string) bool {
			c, ok := sg.Cell(cell)
			if !ok || c.Attrs == nil {
				return false
			}
			return c.Attrs["exit"] == "true" || c.Attrs["entrance"] == "true"
		}
	}
	return func(before, after PresenceInterval, d time.Duration) GapKind {
		if isExit(before.Cell) {
			return SemanticGap
		}
		if longGap > 0 && d >= longGap {
			return SemanticGap
		}
		return Hole
	}
}

// AnnotateGaps records each gap of the trace as a transition annotation on
// the tuple following it ({gap:[hole]} or {gap:[semantic gap]}), returning
// a new trace. The trace itself is not re-timed: gaps remain visible, but
// downstream analytics can distinguish accidental from intentional absence.
func AnnotateGaps(tr Trace, minDur time.Duration, cls GapClassifier) Trace {
	out := tr.Clone()
	for _, g := range tr.FindGaps(minDur, cls) {
		i := g.After + 1
		if out[i].TransitionAnn == nil {
			out[i].TransitionAnn = Annotations{}
		}
		out[i].TransitionAnn.Add("gap", g.Kind.String())
	}
	return out
}
