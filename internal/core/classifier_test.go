package core

import (
	"testing"
	"time"

	"sitm/internal/indoor"
)

// exitGraph builds a two-zone graph where "carrousel" is flagged as an exit
// via cell attributes, mirroring the Louvre model's zone attrs.
func exitGraph(t *testing.T) *indoor.SpaceGraph {
	t.Helper()
	sg := indoor.NewSpaceGraph()
	if err := sg.AddLayer(indoor.Layer{ID: "zone"}); err != nil {
		t.Fatal(err)
	}
	cells := []indoor.Cell{
		{ID: "gallery", Layer: "zone"},
		{ID: "carrousel", Layer: "zone", Attrs: map[string]string{"exit": "true"}},
	}
	for _, c := range cells {
		if err := sg.AddCell(c); err != nil {
			t.Fatal(err)
		}
	}
	return sg
}

func TestExitAwareClassifier(t *testing.T) {
	sg := exitGraph(t)
	cls := ExitAwareClassifier(sg, nil, 2*time.Hour)
	mk := func(cell string) PresenceInterval { return PresenceInterval{Cell: cell} }

	// §4.2: disappearing after an exit zone is normal — a semantic gap.
	if got := cls(mk("carrousel"), mk("gallery"), 10*time.Minute); got != SemanticGap {
		t.Errorf("after exit zone = %v, want semantic gap", got)
	}
	// A short gap after an ordinary gallery is a sensing hole.
	if got := cls(mk("gallery"), mk("gallery"), 10*time.Minute); got != Hole {
		t.Errorf("short mid-gallery gap = %v, want hole", got)
	}
	// A very long absence counts as semantic regardless of the cell.
	if got := cls(mk("gallery"), mk("gallery"), 3*time.Hour); got != SemanticGap {
		t.Errorf("long gap = %v, want semantic gap", got)
	}
	// Unknown cells fall back to Hole.
	if got := cls(mk("ghost"), mk("gallery"), time.Minute); got != Hole {
		t.Errorf("unknown cell = %v, want hole", got)
	}
	// longGap = 0 disables the duration rule.
	cls0 := ExitAwareClassifier(sg, nil, 0)
	if got := cls0(mk("gallery"), mk("gallery"), 100*time.Hour); got != Hole {
		t.Errorf("duration rule must be off: %v", got)
	}
	// A custom isExit overrides the attribute lookup.
	custom := ExitAwareClassifier(sg, func(cell string) bool { return cell == "gallery" }, 0)
	if got := custom(mk("gallery"), mk("carrousel"), time.Minute); got != SemanticGap {
		t.Errorf("custom isExit = %v", got)
	}
}

func TestAnnotateGaps(t *testing.T) {
	sg := exitGraph(t)
	tr := Trace{
		{Cell: "gallery", Start: at("10:00:00"), End: at("10:30:00")},
		{Cell: "carrousel", Start: at("10:40:00"), End: at("10:50:00")}, // 10m hole
		{Cell: "gallery", Start: at("14:00:00"), End: at("14:10:00")},   // gap after exit
	}
	cls := ExitAwareClassifier(sg, nil, 0)
	out := AnnotateGaps(tr, time.Minute, cls)
	if !out[1].TransitionAnn.Has("gap", "hole") {
		t.Errorf("tuple 1 transition ann = %v", out[1].TransitionAnn)
	}
	if !out[2].TransitionAnn.Has("gap", "semantic gap") {
		t.Errorf("tuple 2 transition ann = %v", out[2].TransitionAnn)
	}
	// The original trace is untouched.
	if tr[1].TransitionAnn != nil {
		t.Error("AnnotateGaps must not mutate its input")
	}
	// Small gaps below the threshold are not annotated.
	out = AnnotateGaps(tr, time.Hour, cls)
	if out[1].TransitionAnn.HasKey("gap") {
		t.Error("sub-threshold gap annotated")
	}
	if !out[2].TransitionAnn.Has("gap", "semantic gap") {
		t.Error("large gap lost")
	}
}
