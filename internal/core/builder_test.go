package core

import (
	"testing"
	"testing/quick"
	"time"
)

func det(mo, cell, start, end string) Detection {
	return Detection{MO: mo, Cell: cell, Start: at(start), End: at(end)}
}

func TestBuildTrajectoriesBasic(t *testing.T) {
	dets := []Detection{
		det("v1", "a", "10:00:00", "10:05:00"),
		det("v1", "b", "10:05:30", "10:15:00"),
		det("v2", "a", "11:00:00", "11:01:00"),
	}
	trajs, stats := BuildTrajectories(dets, BuildOptions{})
	if len(trajs) != 2 {
		t.Fatalf("trajectories = %d", len(trajs))
	}
	if stats.Input != 3 || stats.Trajectories != 2 || stats.DroppedZero != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if trajs[0].MO != "v1" || len(trajs[0].Trace) != 2 {
		t.Errorf("traj[0] = %+v", trajs[0])
	}
	// Def 3.1 default annotation applied.
	if trajs[0].Ann.IsEmpty() {
		t.Error("built trajectories must carry annotations")
	}
}

func TestBuildTrajectoriesDropsZeroDuration(t *testing.T) {
	dets := []Detection{
		det("v1", "a", "10:00:00", "10:00:00"), // zero duration: error
		det("v1", "b", "10:01:00", "10:05:00"),
	}
	trajs, stats := BuildTrajectories(dets, BuildOptions{DropZeroDuration: true})
	if stats.DroppedZero != 1 {
		t.Errorf("DroppedZero = %d", stats.DroppedZero)
	}
	if len(trajs) != 1 || len(trajs[0].Trace) != 1 || trajs[0].Trace[0].Cell != "b" {
		t.Errorf("trajs = %+v", trajs)
	}
	// Without the option the zero-duration detection is kept.
	trajs, stats = BuildTrajectories(dets, BuildOptions{})
	if stats.DroppedZero != 0 || len(trajs[0].Trace) != 2 {
		t.Errorf("kept: %+v %+v", trajs, stats)
	}
}

func TestBuildTrajectoriesSessionSplit(t *testing.T) {
	dets := []Detection{
		det("v1", "a", "10:00:00", "10:05:00"),
		det("v1", "b", "15:00:00", "15:05:00"), // 5h later: second visit
	}
	trajs, _ := BuildTrajectories(dets, BuildOptions{SessionGap: time.Hour})
	if len(trajs) != 2 {
		t.Fatalf("expected 2 visits, got %d", len(trajs))
	}
	trajs, _ = BuildTrajectories(dets, BuildOptions{})
	if len(trajs) != 1 {
		t.Fatalf("no session gap: expected 1 trajectory, got %d", len(trajs))
	}
}

func TestBuildTrajectoriesMergeSameCell(t *testing.T) {
	dets := []Detection{
		det("v1", "a", "10:00:00", "10:05:00"),
		det("v1", "a", "10:05:00", "10:08:00"),
		det("v1", "b", "10:08:00", "10:09:00"),
	}
	trajs, stats := BuildTrajectories(dets, BuildOptions{MergeSameCell: true})
	if stats.Merged != 1 {
		t.Errorf("Merged = %d", stats.Merged)
	}
	if len(trajs[0].Trace) != 2 || !trajs[0].Trace[0].End.Equal(at("10:08:00")) {
		t.Errorf("merged trace = %v", trajs[0].Trace)
	}
}

func TestBuildTrajectoriesUnorderedInput(t *testing.T) {
	dets := []Detection{
		det("v1", "b", "10:05:30", "10:15:00"),
		det("v1", "a", "10:00:00", "10:05:00"), // out of order
	}
	trajs, _ := BuildTrajectories(dets, BuildOptions{})
	if len(trajs) != 1 {
		t.Fatalf("trajs = %d", len(trajs))
	}
	if got := trajs[0].Trace.Cells(); got[0] != "a" || got[1] != "b" {
		t.Errorf("cells = %v; input must be sorted", got)
	}
}

func TestBuildTrajectoriesCustomAnn(t *testing.T) {
	dets := []Detection{det("v1", "a", "10:00:00", "10:05:00")}
	trajs, _ := BuildTrajectories(dets, BuildOptions{Ann: NewAnnotations("goal", "study")})
	if !trajs[0].Ann.Has("goal", "study") {
		t.Errorf("ann = %v", trajs[0].Ann)
	}
}

func TestBuildTrajectoriesEmpty(t *testing.T) {
	trajs, stats := BuildTrajectories(nil, BuildOptions{})
	if len(trajs) != 0 || stats.Input != 0 {
		t.Errorf("empty input: %v %+v", trajs, stats)
	}
}

func TestQuickBuildTrajectoriesInvariants(t *testing.T) {
	// Property: every built trajectory has a valid (overlap-tolerant) trace,
	// and the total tuple count never exceeds the input detection count.
	f := func(raw []uint16) bool {
		var dets []Detection
		base := at("08:00:00")
		for i, r := range raw {
			mo := string(rune('a' + int(r)%3))
			cell := string(rune('A' + int(r>>2)%5))
			start := base.Add(time.Duration(int(r)%1440) * time.Minute)
			dur := time.Duration(int(r>>4)%30) * time.Minute
			_ = i
			dets = append(dets, Detection{MO: mo, Cell: cell, Start: start, End: start.Add(dur)})
		}
		trajs, stats := BuildTrajectories(dets, BuildOptions{
			DropZeroDuration: true,
			MergeSameCell:    true,
			SessionGap:       2 * time.Hour,
		})
		total := 0
		for _, tj := range trajs {
			if err := tj.Trace.Validate(ValidateOptions{AllowOverlap: true}); err != nil {
				return false
			}
			total += len(tj.Trace)
		}
		return total+stats.DroppedZero+stats.Merged == stats.Input
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
