package core

import (
	"fmt"
	"time"
)

// Predicate is the user-defined, domain-dependent spatiotemporal and/or
// semantic predicate P_ep of Definition 3.4: it decides whether a candidate
// subtrajectory is a meaningful episode.
type Predicate func(Trajectory) bool

// Episode is a particularly meaningful part of a semantic trajectory
// (Def 3.4): a proper subtrajectory whose annotation set differs from the
// parent's and which satisfies a predicate.
type Episode struct {
	Trajectory
	// Label names the episode kind (e.g. "exit museum", "buy souvenir").
	Label string
}

// NewEpisode extracts tuples [i, j) of parent as an episode labelled label
// with annotations ann, enforcing all three Def 3.4 conditions:
// (1) proper subtrajectory, (2) A'_traj ≠ A_traj, (3) pred holds.
func NewEpisode(parent Trajectory, i, j int, label string, ann Annotations, pred Predicate) (Episode, error) {
	sub, err := parent.Subtrajectory(i, j, ann)
	if err != nil {
		return Episode{}, err
	}
	if ann.Equal(parent.Ann) {
		return Episode{}, ErrEpisodeSameAnn
	}
	if pred != nil && !pred(sub) {
		return Episode{}, ErrEpisodePredicate
	}
	return Episode{Trajectory: sub, Label: label}, nil
}

// Segmentation is an episodic segmentation of a semantic trajectory: any
// subset of its episodes that covers it time-wise. Contrary to typical
// literature practice, episodes MAY overlap in time (§3.3): the same
// movement part can carry multiple meanings — the paper's E→P→S→C path is
// simultaneously an "exit museum" and (its E→P→S prefix) a "buy souvenir"
// episode.
type Segmentation struct {
	Parent   Trajectory
	Episodes []Episode
}

// Covers reports whether the episodes jointly cover the parent time-wise:
// every presence interval of the parent's trace falls inside at least one
// episode's time span. Coverage is judged at tuple granularity because real
// traces contain small inter-detection gaps that no episode can fill; the
// observed presence, not the unobserved void, must be accounted for.
// Overlap between episodes is permitted (§3.3).
func (s Segmentation) Covers() bool {
	if len(s.Episodes) == 0 {
		return false
	}
	type span struct{ start, end time.Time }
	spans := make([]span, len(s.Episodes))
	for i, e := range s.Episodes {
		spans[i] = span{e.Start(), e.End()}
	}
	for _, p := range s.Parent.Trace {
		covered := false
		for _, sp := range spans {
			if !sp.start.After(p.Start) && !sp.end.Before(p.End) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Validate checks that every episode is a proper subtrajectory of the
// parent with differing annotations, and that the segmentation covers the
// parent time-wise.
func (s Segmentation) Validate() error {
	for i, e := range s.Episodes {
		if !e.IsSubtrajectoryOf(s.Parent) {
			return fmt.Errorf("%w: episode %d (%s)", ErrNotSubtrajectory, i, e.Label)
		}
		if e.Ann.Equal(s.Parent.Ann) {
			return fmt.Errorf("%w: episode %d (%s)", ErrEpisodeSameAnn, i, e.Label)
		}
	}
	if !s.Covers() {
		return fmt.Errorf("core: segmentation does not cover parent time span")
	}
	return nil
}

// OverlappingPairs returns the index pairs of episodes whose time spans
// overlap — the paper's signature feature (Fig 5 shows two overlapping
// goal episodes).
func (s Segmentation) OverlappingPairs() [][2]int {
	var out [][2]int
	for i := 0; i < len(s.Episodes); i++ {
		for j := i + 1; j < len(s.Episodes); j++ {
			a, b := s.Episodes[i], s.Episodes[j]
			if a.Start().Before(b.End()) && b.Start().Before(a.End()) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// IntervalPredicate decides whether a single presence interval belongs to
// an episode kind; used by MaximalEpisodes to segment traces the SeMiTri
// way ("a maximal subsequence ... such that all its spatiotemporal
// positions comply with a given predicate").
type IntervalPredicate func(PresenceInterval) bool

// MaximalEpisodes extracts all maximal runs of consecutive tuples
// satisfying pred as episodes labelled label with annotations ann. Runs
// spanning the whole trace are skipped (they would not be proper
// subtrajectories). Episode-level predicate checks are bypassed: maximality
// by construction plays that role.
func MaximalEpisodes(parent Trajectory, pred IntervalPredicate, label string, ann Annotations) []Episode {
	var out []Episode
	n := len(parent.Trace)
	i := 0
	for i < n {
		if !pred(parent.Trace[i]) {
			i++
			continue
		}
		j := i
		for j < n && pred(parent.Trace[j]) {
			j++
		}
		if j-i < n { // proper subsequence only
			if ep, err := NewEpisode(parent, i, j, label, ann, nil); err == nil {
				out = append(out, ep)
			}
		}
		i = j
	}
	return out
}

// EpisodesByCells extracts maximal episodes over a cell set: every tuple
// whose cell is in cells belongs to the run. The Figure 5 example is
// EpisodesByCells(t, {E,P,S}, "buy souvenir", ...) against a full E→P→S→C
// trace.
func EpisodesByCells(parent Trajectory, cells map[string]bool, label string, ann Annotations) []Episode {
	return MaximalEpisodes(parent, func(p PresenceInterval) bool { return cells[p.Cell] }, label, ann)
}
