package core

import (
	"fmt"
	"time"

	"sitm/internal/indoor"
)

// GapKind classifies temporal gaps in a movement track greater than the
// sampling rate (§2.2, after Parent et al. 2013): accidental "holes"
// (sensor coverage gaps, app dropouts) versus intentional "semantic gaps"
// (e.g. the MO left the building).
type GapKind int

// Gap kinds.
const (
	Hole GapKind = iota
	SemanticGap
)

// String implements fmt.Stringer.
func (k GapKind) String() string {
	if k == SemanticGap {
		return "semantic gap"
	}
	return "hole"
}

// Gap is a temporal discontinuity between consecutive presence intervals.
type Gap struct {
	After    int // index of the tuple preceding the gap
	Start    time.Time
	End      time.Time
	Kind     GapKind
	Duration time.Duration
}

// GapClassifier decides the kind of a gap; the default classifier treats
// gaps bounded by exit-class cells as semantic (the MO plausibly left) and
// everything else as a hole.
type GapClassifier func(before, after PresenceInterval, d time.Duration) GapKind

// FindGaps returns the gaps of tr longer than minDur, classified by cls
// (nil = every gap is a Hole).
func (tr Trace) FindGaps(minDur time.Duration, cls GapClassifier) []Gap {
	var out []Gap
	for i := 1; i < len(tr); i++ {
		gap := tr[i].Start.Sub(tr[i-1].End)
		if gap <= minDur {
			continue
		}
		g := Gap{After: i - 1, Start: tr[i-1].End, End: tr[i].Start, Duration: gap}
		if cls != nil {
			g.Kind = cls(tr[i-1], tr[i], gap)
		}
		out = append(out, g)
	}
	return out
}

// Inference records one reconstructed presence interval: the paper's Fig 6
// example infers a stay in Zone 60888 between detections in 60887 and
// 60890, adding an extra tuple to the sequence.
type Inference struct {
	Index int              // index of the inserted tuple in the output trace
	Tuple PresenceInterval // the inferred tuple
	From  string           // detected cell before the inferred stretch
	To    string           // detected cell after
}

// AnnInferred is the annotation key marking inferred tuples.
const AnnInferred = "inferred"

// InferMissing reconstructs undetected presence intervals: whenever two
// consecutive tuples are not directly accessible in the space graph, the
// shortest accessibility path between them is inserted as inferred tuples,
// splitting the inter-detection time uniformly across the inserted cells.
// Inferred tuples carry the annotation {inferred:[true]} plus any extra
// annotations supplied (the paper's example adds goals such as
// "cloakroomPickup" derived from cell semantics).
//
// Traces whose consecutive cells are already accessible are returned
// unchanged. A pair with no accessibility path at all is left as a gap
// (and reported in the error only if failHard is set).
func InferMissing(sg *indoor.SpaceGraph, tr Trace, extra Annotations, failHard bool) (Trace, []Inference, error) {
	if len(tr) < 2 {
		return tr.Clone(), nil, nil
	}
	layerOf := func(cell string) (string, error) {
		c, ok := sg.Cell(cell)
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrUnknownCell, cell)
		}
		return c.Layer, nil
	}

	out := make(Trace, 0, len(tr))
	var infs []Inference
	out = append(out, tr[0])
	for i := 1; i < len(tr); i++ {
		prev := tr[i-1]
		cur := tr[i]
		if cur.Cell == prev.Cell || sg.Accessible(prev.Cell, cur.Cell) {
			out = append(out, cur)
			continue
		}
		la, err := layerOf(prev.Cell)
		if err != nil {
			return nil, nil, err
		}
		lb, err := layerOf(cur.Cell)
		if err != nil {
			return nil, nil, err
		}
		if la != lb {
			if failHard {
				return nil, nil, fmt.Errorf("core: tuples %d/%d cross layers %q/%q", i-1, i, la, lb)
			}
			out = append(out, cur)
			continue
		}
		ag, err := sg.AccessGraph(la)
		if err != nil {
			return nil, nil, err
		}
		path, err := ag.ShortestPath(prev.Cell, cur.Cell)
		if err != nil {
			if failHard {
				return nil, nil, fmt.Errorf("core: no accessibility path %s → %s: %v", prev.Cell, cur.Cell, err)
			}
			out = append(out, cur)
			continue
		}
		middle := path.Nodes[1 : len(path.Nodes)-1]
		gapStart, gapEnd := prev.End, cur.Start
		gapDur := gapEnd.Sub(gapStart)
		if gapDur < 0 {
			gapDur = 0
			gapEnd = gapStart
		}
		// The inferred stays tile the whole unobserved window, matching the
		// paper's example where zone60888's tuple spans exactly the time
		// between the two detections.
		per := gapDur / time.Duration(len(middle))
		at := gapStart
		for k, cell := range middle {
			end := at.Add(per)
			if k == len(middle)-1 {
				end = gapEnd // absorb integer-division remainder
			}
			ann := NewAnnotations(AnnInferred, "true").Merge(extra)
			tuple := PresenceInterval{
				Transition: path.Edges[k].ID,
				Cell:       cell,
				Start:      at,
				End:        end,
				Ann:        ann,
			}
			infs = append(infs, Inference{Index: len(out), Tuple: tuple, From: prev.Cell, To: cur.Cell})
			out = append(out, tuple)
			at = end
		}
		// The entering transition of the detected tuple is now known: the
		// last edge of the reconstructed path.
		if cur.Transition == "" && len(path.Edges) > 0 {
			cur.Transition = path.Edges[len(path.Edges)-1].ID
		}
		out = append(out, cur)
	}
	return out, infs, nil
}
