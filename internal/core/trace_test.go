package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sitm/internal/indoor"
)

var day = time.Date(2017, 2, 14, 0, 0, 0, 0, time.UTC)

// at converts "HH:MM:SS" into a timestamp on the test day.
func at(clock string) time.Time {
	t, err := time.Parse("15:04:05", clock)
	if err != nil {
		panic(err)
	}
	return day.Add(time.Duration(t.Hour())*time.Hour +
		time.Duration(t.Minute())*time.Minute +
		time.Duration(t.Second())*time.Second)
}

// paperTrace reproduces the §3.3 museum example:
// { (_,room001,11:30:00,11:32:35,∅), (door012,hall003,11:32:31,11:40:00,∅),
//
//	(door005,room006,14:12:00,14:28:00,∅) }
//
// Note the intentional 4-second overlap between the first two tuples.
func paperTrace() Trace {
	return Trace{
		{Transition: "", Cell: "room001", Start: at("11:30:00"), End: at("11:32:35")},
		{Transition: "door012", Cell: "hall003", Start: at("11:32:31"), End: at("11:40:00")},
		{Transition: "door005", Cell: "room006", Start: at("14:12:00"), End: at("14:28:00")},
	}
}

func TestTraceValidate(t *testing.T) {
	tr := paperTrace()
	if err := tr.Validate(ValidateOptions{AllowOverlap: true}); err != nil {
		t.Errorf("paper trace must validate with overlap allowed: %v", err)
	}
	if err := tr.Validate(ValidateOptions{}); !errors.Is(err, ErrOverlap) {
		t.Errorf("strict validation must flag the 4s overlap: %v", err)
	}
	if err := tr.Validate(ValidateOptions{AllowOverlap: true, MaxOverlap: time.Second}); !errors.Is(err, ErrOverlap) {
		t.Errorf("1s tolerance must flag 4s overlap: %v", err)
	}
	if err := tr.Validate(ValidateOptions{AllowOverlap: true, MaxOverlap: 10 * time.Second}); err != nil {
		t.Errorf("10s tolerance must accept: %v", err)
	}
	if err := (Trace{}).Validate(ValidateOptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty: %v", err)
	}
	bad := Trace{{Cell: "x", Start: at("12:00:00"), End: at("11:00:00")}}
	if err := bad.Validate(ValidateOptions{}); !errors.Is(err, ErrIntervalInverted) {
		t.Errorf("inverted: %v", err)
	}
	ooo := Trace{
		{Cell: "a", Start: at("12:00:00"), End: at("12:10:00")},
		{Cell: "b", Start: at("11:00:00"), End: at("11:10:00")},
	}
	if err := ooo.Validate(ValidateOptions{}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out of order: %v", err)
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := paperTrace()
	if !tr.Start().Equal(at("11:30:00")) {
		t.Errorf("Start = %v", tr.Start())
	}
	if !tr.End().Equal(at("14:28:00")) {
		t.Errorf("End = %v", tr.End())
	}
	if tr.Duration() != 2*time.Hour+58*time.Minute {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if got := tr.Cells(); len(got) != 3 || got[1] != "hall003" {
		t.Errorf("Cells = %v", got)
	}
	if got := tr.Transitions(); got != 2 {
		t.Errorf("Transitions = %d", got)
	}
	if got := tr.TimeIn("room006"); got != 16*time.Minute {
		t.Errorf("TimeIn = %v", got)
	}
	if got := tr.TimeIn("nowhere"); got != 0 {
		t.Errorf("TimeIn(nowhere) = %v", got)
	}
	var empty Trace
	if !empty.Start().IsZero() || !empty.End().IsZero() {
		t.Error("empty trace has zero bounds")
	}
}

func TestTraceDistinctCells(t *testing.T) {
	tr := Trace{
		{Cell: "a", Start: at("10:00:00"), End: at("10:01:00")},
		{Cell: "b", Start: at("10:01:00"), End: at("10:02:00")},
		{Cell: "a", Start: at("10:02:00"), End: at("10:03:00")},
	}
	if got := tr.DistinctCells(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("DistinctCells = %v", got)
	}
	if got := tr.Transitions(); got != 2 {
		t.Errorf("Transitions = %d", got)
	}
}

func TestTraceSplitAt(t *testing.T) {
	// The paper's event-based example: the room006 stay splits at 14:21:45/46
	// when the visitor's goals change from {visit} to {visit, buy}.
	tr := Trace{
		{Transition: "door005", Cell: "room006", Start: at("14:12:00"), End: at("14:28:00"),
			Ann: NewAnnotations("goals", "visit")},
	}
	split, err := tr.SplitAt(0, at("14:21:46"), NewAnnotations("goals", "visit", "goals", "buy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 2 {
		t.Fatalf("len = %d", len(split))
	}
	if !split[0].End.Equal(at("14:21:46")) || !split[1].Start.Equal(at("14:21:46")) {
		t.Error("split boundary wrong")
	}
	if split[1].Transition != "" {
		t.Error("second part must have no physical transition")
	}
	if !split[1].Ann.Has("goals", "buy") || split[0].Ann.Has("goals", "buy") {
		t.Error("annotations wrong after split")
	}
	if split[0].Cell != "room006" || split[1].Cell != "room006" {
		t.Error("cell must be preserved")
	}
	// Bad indexes and times.
	if _, err := tr.SplitAt(5, at("14:20:00"), nil); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := tr.SplitAt(0, at("14:12:00"), nil); err == nil {
		t.Error("split at start must fail")
	}
	if _, err := tr.SplitAt(0, at("14:28:00"), nil); err == nil {
		t.Error("split at end must fail")
	}
	if _, err := tr.SplitAt(0, at("15:00:00"), nil); err == nil {
		t.Error("split outside must fail")
	}
}

func TestTraceCoalesce(t *testing.T) {
	ann := NewAnnotations("goals", "visit")
	tr := Trace{
		{Cell: "a", Start: at("10:00:00"), End: at("10:05:00"), Ann: ann},
		{Cell: "a", Start: at("10:05:00"), End: at("10:09:00"), Ann: ann.Clone()},
		{Cell: "b", Start: at("10:09:00"), End: at("10:12:00"), Ann: ann.Clone()},
	}
	got := tr.Coalesce()
	if len(got) != 2 {
		t.Fatalf("coalesced = %v", got)
	}
	if !got[0].End.Equal(at("10:09:00")) {
		t.Errorf("merged end = %v", got[0].End)
	}
	// Different annotations must NOT merge (event-based model).
	tr[1].Ann = NewAnnotations("goals", "buy")
	if got := tr.Coalesce(); len(got) != 3 {
		t.Errorf("annotation change must block coalescing: %v", got)
	}
	if got := (Trace{}).Coalesce(); got != nil {
		t.Error("empty coalesce")
	}
	// Split followed by coalesce with equal annotations is identity.
	tr2 := Trace{{Cell: "x", Start: at("10:00:00"), End: at("11:00:00"), Ann: ann}}
	split, err := tr2.SplitAt(0, at("10:30:00"), ann.Clone())
	if err != nil {
		t.Fatal(err)
	}
	back := split.Coalesce()
	if len(back) != 1 || !back[0].End.Equal(at("11:00:00")) {
		t.Errorf("split∘coalesce ≠ id: %v", back)
	}
}

func TestTraceCheckAccessibility(t *testing.T) {
	sg := indoor.NewSpaceGraph()
	if err := sg.AddLayer(indoor.Layer{ID: "zone"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E", "P", "S"} {
		if err := sg.AddCell(indoor.Cell{ID: id, Layer: "zone"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sg.AddBiAccess("E", "P", "b1"); err != nil {
		t.Fatal(err)
	}
	if err := sg.AddBiAccess("P", "S", "b2"); err != nil {
		t.Fatal(err)
	}
	ok := Trace{
		{Cell: "E", Start: at("10:00:00"), End: at("10:10:00")},
		{Cell: "P", Start: at("10:10:00"), End: at("10:11:00")},
		{Cell: "S", Start: at("10:11:00"), End: at("10:20:00")},
	}
	if bad := ok.CheckAccessibility(sg); len(bad) != 0 {
		t.Errorf("valid trace flagged: %v", bad)
	}
	sparse := Trace{
		{Cell: "E", Start: at("10:00:00"), End: at("10:10:00")},
		{Cell: "S", Start: at("10:12:00"), End: at("10:20:00")},
	}
	if bad := sparse.CheckAccessibility(sg); len(bad) != 1 || bad[0] != 1 {
		t.Errorf("E→S must be flagged: %v", bad)
	}
	same := Trace{
		{Cell: "E", Start: at("10:00:00"), End: at("10:10:00")},
		{Cell: "E", Start: at("10:12:00"), End: at("10:20:00")},
	}
	if bad := same.CheckAccessibility(sg); len(bad) != 0 {
		t.Errorf("same-cell must not be flagged: %v", bad)
	}
}

func TestTraceAndIntervalString(t *testing.T) {
	tr := paperTrace()
	s := tr.String()
	for _, want := range []string{"(_, room001, 11:30:00, 11:32:35, ∅)", "door012", "room006"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace string missing %q in %q", want, s)
		}
	}
	if tr[0].Duration() != 2*time.Minute+35*time.Second {
		t.Errorf("Duration = %v", tr[0].Duration())
	}
}

func TestTraceClone(t *testing.T) {
	tr := paperTrace()
	tr[0].Ann = NewAnnotations("k", "v")
	cp := tr.Clone()
	cp[0].Ann.Add("k", "w")
	cp[1].Cell = "changed"
	if tr[0].Ann.Has("k", "w") || tr[1].Cell == "changed" {
		t.Error("Clone must be deep")
	}
}
