package core

import (
	"errors"
	"testing"
	"time"
)

// figure5Trajectory reproduces the paper's Figure 5 walk on the −2 floor:
// E → P → S → C, where E hosts the temporary exhibition, P is the passage,
// S the souvenir shops and C the Carrousel exit.
func figure5Trajectory(t *testing.T) Trajectory {
	t.Helper()
	tr := Trace{
		{Cell: "E", Start: at("17:00:00"), End: at("17:30:00")},
		{Transition: "checkpoint002", Cell: "P", Start: at("17:30:21"), End: at("17:31:42")},
		{Transition: "passage003", Cell: "S", Start: at("17:31:50"), End: at("17:50:00")},
		{Transition: "carrousel", Cell: "C", Start: at("17:50:10"), End: at("17:55:00")},
	}
	traj, err := NewTrajectory("visitorF5", tr, NewAnnotations("activity", "visit"))
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestNewEpisode(t *testing.T) {
	traj := figure5Trajectory(t)
	longEnough := func(min time.Duration) Predicate {
		return func(tj Trajectory) bool { return tj.Duration() >= min }
	}
	ep, err := NewEpisode(traj, 0, 3, "buy souvenir",
		NewAnnotations("goals", "buySouvenir"), longEnough(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if ep.Label != "buy souvenir" || len(ep.Trace) != 3 {
		t.Errorf("episode = %+v", ep)
	}
	if !ep.IsSubtrajectoryOf(traj) {
		t.Error("episode must be a subtrajectory")
	}
	// Def 3.4 (2): annotations must differ from the parent's.
	if _, err := NewEpisode(traj, 0, 3, "x", NewAnnotations("activity", "visit"), nil); !errors.Is(err, ErrEpisodeSameAnn) {
		t.Errorf("same annotations: %v", err)
	}
	// Def 3.4 (3): the predicate must hold.
	never := func(Trajectory) bool { return false }
	if _, err := NewEpisode(traj, 0, 3, "x", NewAnnotations("g", "v"), never); !errors.Is(err, ErrEpisodePredicate) {
		t.Errorf("failed predicate: %v", err)
	}
	// Def 3.4 (1): must be a proper subtrajectory.
	if _, err := NewEpisode(traj, 0, 4, "x", NewAnnotations("g", "v"), nil); !errors.Is(err, ErrNotSubtrajectory) {
		t.Errorf("whole trace: %v", err)
	}
}

func TestFigure5OverlappingEpisodes(t *testing.T) {
	// The paper's example: the whole E→P→S→C part is an "exit museum"
	// episode while its E→P→S prefix is simultaneously a "buy souvenir"
	// episode. Both belong to one episodic segmentation.
	traj := figure5Trajectory(t)

	exit, err := NewEpisode(traj, 1, 4, "exit museum",
		NewAnnotations("goals", "museumExit"), nil)
	if err != nil {
		t.Fatal(err)
	}
	buy, err := NewEpisode(traj, 0, 3, "buy souvenir",
		NewAnnotations("goals", "buySouvenir"), nil)
	if err != nil {
		t.Fatal(err)
	}
	seg := Segmentation{Parent: traj, Episodes: []Episode{exit, buy}}
	if err := seg.Validate(); err != nil {
		t.Fatalf("segmentation: %v", err)
	}
	pairs := seg.OverlappingPairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Errorf("overlapping pairs = %v; the two episodes must overlap in time", pairs)
	}
}

func TestSegmentationCoverage(t *testing.T) {
	traj := figure5Trajectory(t)
	prefix, _ := NewEpisode(traj, 0, 2, "p", NewAnnotations("g", "a"), nil)
	suffix, _ := NewEpisode(traj, 2, 4, "s", NewAnnotations("g", "b"), nil)
	full := Segmentation{Parent: traj, Episodes: []Episode{prefix, suffix}}
	if !full.Covers() {
		t.Error("prefix+suffix must cover")
	}
	if err := full.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	gappy := Segmentation{Parent: traj, Episodes: []Episode{prefix}}
	if gappy.Covers() {
		t.Error("prefix alone must not cover")
	}
	if err := gappy.Validate(); err == nil {
		t.Error("non-covering segmentation must fail validation")
	}
	empty := Segmentation{Parent: traj}
	if empty.Covers() {
		t.Error("empty segmentation cannot cover")
	}
}

func TestSegmentationValidateRejectsForeignEpisode(t *testing.T) {
	traj := figure5Trajectory(t)
	other, _ := NewTrajectory("someone-else", Trace{
		{Cell: "X", Start: at("17:00:00"), End: at("17:55:00")},
	}, NewAnnotations("a", "b"))
	foreign := Episode{Trajectory: other, Label: "foreign"}
	seg := Segmentation{Parent: traj, Episodes: []Episode{foreign}}
	if err := seg.Validate(); !errors.Is(err, ErrNotSubtrajectory) {
		t.Errorf("foreign episode: %v", err)
	}
}

func TestMaximalEpisodes(t *testing.T) {
	traj := figure5Trajectory(t)
	// Stays longer than 10 minutes: E (30m) and S (18m): two separate runs.
	long := func(p PresenceInterval) bool { return p.Duration() > 10*time.Minute }
	eps := MaximalEpisodes(traj, long, "long stay", NewAnnotations("kind", "longStay"))
	if len(eps) != 2 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if eps[0].Trace[0].Cell != "E" || eps[1].Trace[0].Cell != "S" {
		t.Errorf("episode cells = %q, %q", eps[0].Trace[0].Cell, eps[1].Trace[0].Cell)
	}
	// A predicate true everywhere yields no PROPER subtrajectory: no episode.
	always := func(PresenceInterval) bool { return true }
	if eps := MaximalEpisodes(traj, always, "all", NewAnnotations("k", "v")); len(eps) != 0 {
		t.Errorf("whole-trace run must yield no episodes, got %d", len(eps))
	}
	// A predicate true nowhere yields none either.
	nowhere := func(PresenceInterval) bool { return false }
	if eps := MaximalEpisodes(traj, nowhere, "none", NewAnnotations("k", "v")); len(eps) != 0 {
		t.Errorf("expected no episodes, got %d", len(eps))
	}
}

func TestEpisodesByCells(t *testing.T) {
	traj := figure5Trajectory(t)
	eps := EpisodesByCells(traj, map[string]bool{"E": true, "P": true, "S": true},
		"buy souvenir", NewAnnotations("goals", "buySouvenir"))
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if got := eps[0].Trace.Cells(); len(got) != 3 || got[0] != "E" || got[2] != "S" {
		t.Errorf("cells = %v", got)
	}
}
