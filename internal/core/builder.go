package core

import (
	"sort"
	"time"
)

// Detection is a raw timestamped cell (zone) detection, the shape of the
// paper's dataset: "each visit consists of a sequence of timestamped 'zone
// detections', i.e. detections of the visitor's smartphone inside a certain
// zone" (§4.1).
type Detection struct {
	MO    string
	Cell  string
	Start time.Time
	End   time.Time
}

// Duration returns the detection duration.
func (d Detection) Duration() time.Duration { return d.End.Sub(d.Start) }

// BuildOptions tunes trajectory extraction from raw detections.
type BuildOptions struct {
	// DropZeroDuration filters out detections with non-positive duration —
	// the paper drops ~10% of zone detections as detection errors.
	DropZeroDuration bool
	// SessionGap starts a new trajectory when the MO is unseen for longer
	// than this (0 disables session splitting: one trajectory per MO).
	SessionGap time.Duration
	// MergeSameCell coalesces consecutive detections of the same cell.
	MergeSameCell bool
	// Ann is the trajectory-level annotation set applied to every built
	// trajectory; Def 3.1 requires it non-empty, so nil defaults to
	// {activity:[visit]}.
	Ann Annotations
}

// BuildStats reports what BuildTrajectories did.
type BuildStats struct {
	Input        int // detections in
	DroppedZero  int // zero/negative-duration detections removed
	Merged       int // detections absorbed by same-cell coalescing
	Trajectories int
}

// sessionAccum is the per-MO incremental segmentation state machine: it
// consumes one detection at a time (in non-decreasing start order for its
// MO) and closes a trajectory whenever the session-gap rule fires. Both
// BuildTrajectories (batch) and StreamSegmenter (online) drive this exact
// machine, so batch and streaming segmentation agree on identical input by
// construction — the property TestStreamBatchEquivalence then re-checks
// empirically.
type sessionAccum struct {
	mo    string
	opts  BuildOptions
	ann   Annotations
	stats *BuildStats
	trace Trace
	// onInterval, when set, observes every presence interval the moment it
	// can no longer change (a later detection opened a new interval, or the
	// session closed).
	onInterval func(mo string, closed PresenceInterval)
}

// observe consumes one detection. When the detection's arrival closes the
// running session (session-gap rule), the closed trajectory is returned
// with ok = true; the detection itself always begins or extends the (new)
// running session unless dropped as a zero-duration error.
func (a *sessionAccum) observe(d Detection) (closed Trajectory, ok bool) {
	if a.opts.DropZeroDuration && !d.End.After(d.Start) {
		a.stats.DroppedZero++
		return Trajectory{}, false
	}
	if len(a.trace) > 0 {
		prev := a.trace[len(a.trace)-1]
		if a.opts.SessionGap > 0 && d.Start.Sub(prev.End) > a.opts.SessionGap {
			closed, ok = a.flush()
		}
	}
	if a.opts.MergeSameCell && len(a.trace) > 0 {
		last := &a.trace[len(a.trace)-1]
		if last.Cell == d.Cell {
			if d.End.After(last.End) {
				last.End = d.End
			}
			a.stats.Merged++
			return closed, ok
		}
	}
	if a.onInterval != nil && len(a.trace) > 0 {
		// The previous interval can no longer merge or extend: it is final.
		a.onInterval(a.mo, a.trace[len(a.trace)-1])
	}
	a.trace = append(a.trace, PresenceInterval{Cell: d.Cell, Start: d.Start, End: d.End})
	return closed, ok
}

// flush closes the running session, returning its trajectory (ok = false
// when the session is empty or invalid).
func (a *sessionAccum) flush() (Trajectory, bool) {
	if len(a.trace) == 0 {
		return Trajectory{}, false
	}
	if a.onInterval != nil {
		a.onInterval(a.mo, a.trace[len(a.trace)-1])
	}
	trace := a.trace
	a.trace = nil
	t, err := NewTrajectory(a.mo, trace, a.ann.Clone())
	if err != nil {
		return Trajectory{}, false
	}
	return t, true
}

// defaultBuildAnn resolves the trajectory annotation set: Def 3.1 requires
// it non-empty, so nil defaults to {activity:[visit]}.
func defaultBuildAnn(opts BuildOptions) Annotations {
	if opts.Ann.IsEmpty() {
		return NewAnnotations("activity", "visit")
	}
	return opts.Ann
}

// sortDetections orders detections stably by (Start, End) — the canonical
// feed order both the batch builder (per MO) and stream producers use, so
// ties resolve identically everywhere.
func sortDetections(ds []Detection) {
	sort.SliceStable(ds, func(i, j int) bool {
		if !ds[i].Start.Equal(ds[j].Start) {
			return ds[i].Start.Before(ds[j].Start)
		}
		return ds[i].End.Before(ds[j].End)
	})
}

// BuildTrajectories groups detections by moving object, orders them in
// time, splits sessions on large gaps, cleans errors and produces semantic
// trajectories. This is the SITM extraction step of §4.2 ("the SITM is
// used to extract (from the zone detection data) the Louvre visit
// trajectories as sequences of presence intervals"). It drives the same
// per-MO state machine as the online StreamSegmenter.
func BuildTrajectories(dets []Detection, opts BuildOptions) ([]Trajectory, BuildStats) {
	stats := BuildStats{Input: len(dets)}
	ann := defaultBuildAnn(opts)

	byMO := make(map[string][]Detection)
	var mos []string
	for _, d := range dets {
		if _, ok := byMO[d.MO]; !ok {
			mos = append(mos, d.MO)
		}
		byMO[d.MO] = append(byMO[d.MO], d)
	}
	sort.Strings(mos)

	var out []Trajectory
	for _, mo := range mos {
		ds := byMO[mo]
		sortDetections(ds)
		acc := &sessionAccum{mo: mo, opts: opts, ann: ann, stats: &stats}
		for _, d := range ds {
			if t, ok := acc.observe(d); ok {
				out = append(out, t)
			}
		}
		if t, ok := acc.flush(); ok {
			out = append(out, t)
		}
	}
	stats.Trajectories = len(out)
	return out, stats
}
