package core

import (
	"sort"
	"time"
)

// Detection is a raw timestamped cell (zone) detection, the shape of the
// paper's dataset: "each visit consists of a sequence of timestamped 'zone
// detections', i.e. detections of the visitor's smartphone inside a certain
// zone" (§4.1).
type Detection struct {
	MO    string
	Cell  string
	Start time.Time
	End   time.Time
}

// Duration returns the detection duration.
func (d Detection) Duration() time.Duration { return d.End.Sub(d.Start) }

// BuildOptions tunes trajectory extraction from raw detections.
type BuildOptions struct {
	// DropZeroDuration filters out detections with non-positive duration —
	// the paper drops ~10% of zone detections as detection errors.
	DropZeroDuration bool
	// SessionGap starts a new trajectory when the MO is unseen for longer
	// than this (0 disables session splitting: one trajectory per MO).
	SessionGap time.Duration
	// MergeSameCell coalesces consecutive detections of the same cell.
	MergeSameCell bool
	// Ann is the trajectory-level annotation set applied to every built
	// trajectory; Def 3.1 requires it non-empty, so nil defaults to
	// {activity:[visit]}.
	Ann Annotations
}

// BuildStats reports what BuildTrajectories did.
type BuildStats struct {
	Input        int // detections in
	DroppedZero  int // zero/negative-duration detections removed
	Merged       int // detections absorbed by same-cell coalescing
	Trajectories int
}

// BuildTrajectories groups detections by moving object, orders them in
// time, splits sessions on large gaps, cleans errors and produces semantic
// trajectories. This is the SITM extraction step of §4.2 ("the SITM is
// used to extract (from the zone detection data) the Louvre visit
// trajectories as sequences of presence intervals").
func BuildTrajectories(dets []Detection, opts BuildOptions) ([]Trajectory, BuildStats) {
	stats := BuildStats{Input: len(dets)}
	ann := opts.Ann
	if ann.IsEmpty() {
		ann = NewAnnotations("activity", "visit")
	}

	byMO := make(map[string][]Detection)
	var mos []string
	for _, d := range dets {
		if opts.DropZeroDuration && !d.End.After(d.Start) {
			stats.DroppedZero++
			continue
		}
		if _, ok := byMO[d.MO]; !ok {
			mos = append(mos, d.MO)
		}
		byMO[d.MO] = append(byMO[d.MO], d)
	}
	sort.Strings(mos)

	var out []Trajectory
	for _, mo := range mos {
		ds := byMO[mo]
		sort.SliceStable(ds, func(i, j int) bool {
			if !ds[i].Start.Equal(ds[j].Start) {
				return ds[i].Start.Before(ds[j].Start)
			}
			return ds[i].End.Before(ds[j].End)
		})
		var trace Trace
		flush := func() {
			if len(trace) == 0 {
				return
			}
			if t, err := NewTrajectory(mo, trace, ann.Clone()); err == nil {
				out = append(out, t)
			}
			trace = nil
		}
		for _, d := range ds {
			if len(trace) > 0 {
				prev := trace[len(trace)-1]
				if opts.SessionGap > 0 && d.Start.Sub(prev.End) > opts.SessionGap {
					flush()
				}
			}
			if opts.MergeSameCell && len(trace) > 0 {
				last := &trace[len(trace)-1]
				if last.Cell == d.Cell {
					if d.End.After(last.End) {
						last.End = d.End
					}
					stats.Merged++
					continue
				}
			}
			trace = append(trace, PresenceInterval{Cell: d.Cell, Start: d.Start, End: d.End})
		}
		flush()
	}
	stats.Trajectories = len(out)
	return out, stats
}
