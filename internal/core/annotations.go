// Package core implements the paper's Semantic Indoor Trajectory Model
// (SITM, §3.3): semantic trajectories as couples of a spatiotemporal trace
// (a sequence of presence intervals at cells of an indoor space graph,
// entered through explicit transitions) and a set of semantic annotations;
// subtrajectories, episodes with user-defined predicates, overlapping
// episodic segmentations, event-based interval splitting, gap
// classification, hierarchical roll-up, and topology-based inference of
// missing presence intervals (the paper's Zone-60888 example, Fig 6).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Annotations is a set of semantic annotations: a mapping from an annotation
// key (e.g. "goals", "activity", "behavior") to an ordered list of values.
// The paper's trace example uses exactly this shape:
// {goals:["visit","buy"]}. A nil map is a valid empty annotation set.
type Annotations map[string][]string

// NewAnnotations builds an annotation set from alternating key/value pairs;
// repeated keys accumulate values.
func NewAnnotations(pairs ...string) Annotations {
	if len(pairs)%2 != 0 {
		panic("core: NewAnnotations requires key/value pairs")
	}
	a := Annotations{}
	for i := 0; i < len(pairs); i += 2 {
		a.Add(pairs[i], pairs[i+1])
	}
	return a
}

// Add appends a value under key if not already present.
func (a Annotations) Add(key, value string) {
	for _, v := range a[key] {
		if v == value {
			return
		}
	}
	a[key] = append(a[key], value)
}

// Has reports whether key holds value.
func (a Annotations) Has(key, value string) bool {
	for _, v := range a[key] {
		if v == value {
			return true
		}
	}
	return false
}

// HasKey reports whether the key carries any value.
func (a Annotations) HasKey(key string) bool { return len(a[key]) > 0 }

// Values returns a copy of the values under key.
func (a Annotations) Values(key string) []string {
	return append([]string(nil), a[key]...)
}

// Keys returns the sorted annotation keys.
func (a Annotations) Keys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IsEmpty reports whether no annotation is present.
func (a Annotations) IsEmpty() bool {
	for _, vs := range a {
		if len(vs) > 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (a Annotations) Clone() Annotations {
	if a == nil {
		return nil
	}
	c := make(Annotations, len(a))
	for k, vs := range a {
		c[k] = append([]string(nil), vs...)
	}
	return c
}

// Merge returns the union of a and b (values deduplicated, a unchanged).
func (a Annotations) Merge(b Annotations) Annotations {
	out := a.Clone()
	if out == nil {
		out = Annotations{}
	}
	for k, vs := range b {
		for _, v := range vs {
			out.Add(k, v)
		}
	}
	return out
}

// Equal reports whether two annotation sets hold the same keys and value
// sets (order-insensitive). The event-based SITM splits a presence interval
// exactly when this predicate flips (§3.3).
func (a Annotations) Equal(b Annotations) bool {
	if a.nonEmptyCount() != b.nonEmptyCount() {
		return false
	}
	for k, vs := range a {
		if len(vs) == 0 {
			continue
		}
		bs := b[k]
		if len(vs) != len(bs) {
			return false
		}
		set := make(map[string]bool, len(vs))
		for _, v := range vs {
			set[v] = true
		}
		for _, v := range bs {
			if !set[v] {
				return false
			}
		}
	}
	return true
}

func (a Annotations) nonEmptyCount() int {
	n := 0
	for _, vs := range a {
		if len(vs) > 0 {
			n++
		}
	}
	return n
}

// ForEachPair invokes fn for every (key, value) pair of the annotation set,
// keys in sorted order. It is the streaming counterpart of the pair-set view
// Jaccard builds: encoders (e.g. the similarity corpus interner) consume the
// pairs without materialising the intermediate map. Values repeat exactly as
// stored; consumers needing set semantics dedupe on their side.
func (a Annotations) ForEachPair(fn func(key, value string)) {
	for _, k := range a.Keys() {
		for _, v := range a[k] {
			fn(k, v)
		}
	}
}

// Jaccard returns the Jaccard similarity of the two annotation sets viewed
// as sets of (key, value) pairs: |A∩B| / |A∪B|, with 1 for two empty sets.
func (a Annotations) Jaccard(b Annotations) float64 {
	pairs := func(x Annotations) map[string]bool {
		m := make(map[string]bool)
		for k, vs := range x {
			for _, v := range vs {
				m[k+"\x00"+v] = true
			}
		}
		return m
	}
	pa, pb := pairs(a), pairs(b)
	if len(pa) == 0 && len(pb) == 0 {
		return 1
	}
	inter := 0
	for p := range pa {
		if pb[p] {
			inter++
		}
	}
	union := len(pa) + len(pb) - inter
	return float64(inter) / float64(union)
}

// String renders annotations in the paper's style:
// {goals:[visit,buy], mood:[curious]} with sorted keys.
func (a Annotations) String() string {
	if a.IsEmpty() {
		return "∅"
	}
	var parts []string
	for _, k := range a.Keys() {
		if len(a[k]) == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:[%s]", k, strings.Join(a[k], ",")))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
