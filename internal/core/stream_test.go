package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var streamDay = time.Date(2017, 2, 14, 9, 0, 0, 0, time.UTC)

func sdet(mo, cell string, startMin, endMin int) Detection {
	return Detection{
		MO: mo, Cell: cell,
		Start: streamDay.Add(time.Duration(startMin) * time.Minute),
		End:   streamDay.Add(time.Duration(endMin) * time.Minute),
	}
}

// randomDetections draws a multi-MO detection set with session-sized gaps,
// zero-duration errors and same-cell repeats — every code path of the
// segmentation machine.
func randomDetections(rng *rand.Rand, mos, n int) []Detection {
	cells := []string{"E", "P", "S", "C", "Z"}
	var out []Detection
	for m := 0; m < mos; m++ {
		mo := fmt.Sprintf("mo%02d", m)
		t := rng.Intn(120)
		for i := 0; i < n; i++ {
			dur := rng.Intn(20) // zero-duration included
			out = append(out, sdet(mo, cells[rng.Intn(len(cells))], t, t+dur))
			gap := rng.Intn(30)
			if rng.Intn(12) == 0 {
				gap += 700 // session-splitting gap (> 10h when ×minute)
			}
			t += dur + gap
		}
	}
	return out
}

// TestStreamMatchesBatchAcrossChunkings: the segmenter's output equals
// BuildTrajectories for any chunking of the same globally time-ordered
// feed — chunk boundaries carry no state.
func TestStreamMatchesBatchAcrossChunkings(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dets := randomDetections(rng, 6, 40)
		sortDetections(dets)
		opts := BuildOptions{
			DropZeroDuration: seed%2 == 0,
			MergeSameCell:    seed%3 == 0,
			SessionGap:       10 * time.Hour,
		}
		want, wantStats := BuildTrajectories(dets, opts)

		seg := NewStreamSegmenter(StreamOptions{Build: opts})
		var got []Trajectory
		for i := 0; i < len(dets); {
			n := 1 + rng.Intn(17)
			if i+n > len(dets) {
				n = len(dets) - i
			}
			got = append(got, seg.ObserveAll(dets[i:i+n])...)
			i += n
		}
		got = append(got, seg.Flush()...)

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d trajectories streamed, %d batched", seed, len(got), len(want))
		}
		sortTrajs(got)
		sortTrajs(want)
		for i := range want {
			assertSameTrajectory(t, got[i], want[i])
		}
		gotStats := seg.Stats()
		if gotStats.Input != wantStats.Input || gotStats.DroppedZero != wantStats.DroppedZero ||
			gotStats.Merged != wantStats.Merged || gotStats.Trajectories != wantStats.Trajectories {
			t.Fatalf("seed %d: stats %+v vs %+v", seed, gotStats, wantStats)
		}
	}
}

func sortTrajs(ts []Trajectory) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTraj(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lessTraj(a, b Trajectory) bool {
	if a.MO != b.MO {
		return a.MO < b.MO
	}
	return a.Start().Before(b.Start())
}

func assertSameTrajectory(t *testing.T, got, want Trajectory) {
	t.Helper()
	if got.MO != want.MO || len(got.Trace) != len(want.Trace) {
		t.Fatalf("trajectory differs: %s/%d vs %s/%d", got.MO, len(got.Trace), want.MO, len(want.Trace))
	}
	if !got.Ann.Equal(want.Ann) {
		t.Fatalf("%s: annotations %v vs %v", got.MO, got.Ann, want.Ann)
	}
	for i := range want.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Cell != w.Cell || !g.Start.Equal(w.Start) || !g.End.Equal(w.End) {
			t.Fatalf("%s tuple %d: (%s %v %v) vs (%s %v %v)",
				got.MO, i, g.Cell, g.Start, g.End, w.Cell, w.Start, w.End)
		}
	}
}

// TestStreamEmitsIntervalsAsTheyClose: OnInterval fires exactly once per
// final presence interval, at the moment it can no longer change.
func TestStreamEmitsIntervalsAsTheyClose(t *testing.T) {
	var closed []PresenceInterval
	seg := NewStreamSegmenter(StreamOptions{
		Build:      BuildOptions{MergeSameCell: true, SessionGap: 10 * time.Hour},
		OnInterval: func(mo string, p PresenceInterval) { closed = append(closed, p) },
	})
	seg.Observe(sdet("a", "E", 0, 5))
	if len(closed) != 0 {
		t.Fatalf("open interval emitted early: %v", closed)
	}
	seg.Observe(sdet("a", "E", 6, 9)) // merges into the open E interval
	if len(closed) != 0 {
		t.Fatalf("merge closed an interval: %v", closed)
	}
	seg.Observe(sdet("a", "P", 10, 12)) // E is now final
	if len(closed) != 1 || closed[0].Cell != "E" || !closed[0].End.Equal(streamDay.Add(9*time.Minute)) {
		t.Fatalf("E not closed correctly: %v", closed)
	}
	seg.Flush() // P closes with the session
	if len(closed) != 2 || closed[1].Cell != "P" {
		t.Fatalf("flush did not close P: %v", closed)
	}
}

// TestStreamGapAnnotation: closed trajectories carry AnnotateGaps output,
// matching a batch AnnotateGaps pass over the same trace.
func TestStreamGapAnnotation(t *testing.T) {
	cls := func(before, after PresenceInterval, d time.Duration) GapKind {
		if d >= 30*time.Minute {
			return SemanticGap
		}
		return Hole
	}
	seg := NewStreamSegmenter(StreamOptions{
		Build:         BuildOptions{SessionGap: 10 * time.Hour},
		GapMinDur:     5 * time.Minute,
		GapClassifier: cls,
	})
	seg.Observe(sdet("a", "E", 0, 5))
	seg.Observe(sdet("a", "P", 20, 25)) // 15 min hole
	seg.Observe(sdet("a", "S", 60, 65)) // 35 min semantic gap
	got := seg.Flush()
	if len(got) != 1 {
		t.Fatalf("trajectories = %d", len(got))
	}
	tr := got[0].Trace
	if tr[1].TransitionAnn.String() == "∅" || !tr[1].TransitionAnn.Has("gap", "hole") {
		t.Fatalf("tuple 1 gap ann = %v", tr[1].TransitionAnn)
	}
	if !tr[2].TransitionAnn.Has("gap", "semantic gap") {
		t.Fatalf("tuple 2 gap ann = %v", tr[2].TransitionAnn)
	}
	// Exactly what the batch pass would have produced.
	batch := AnnotateGaps(Trace{
		{Cell: "E", Start: tr[0].Start, End: tr[0].End},
		{Cell: "P", Start: tr[1].Start, End: tr[1].End},
		{Cell: "S", Start: tr[2].Start, End: tr[2].End},
	}, 5*time.Minute, cls)
	for i := range batch {
		if !batch[i].TransitionAnn.Equal(tr[i].TransitionAnn) {
			t.Fatalf("tuple %d: stream %v vs batch %v", i, tr[i].TransitionAnn, batch[i].TransitionAnn)
		}
	}
}

// TestStreamEpisodesOnClose: episode specs run over every closed
// trajectory and surface through OnEpisode.
func TestStreamEpisodesOnClose(t *testing.T) {
	var eps []Episode
	seg := NewStreamSegmenter(StreamOptions{
		Build: BuildOptions{SessionGap: 10 * time.Hour},
		Episodes: []EpisodeSpec{{
			Label: "shopping",
			Ann:   NewAnnotations("goals", "buy"),
			Pred:  func(p PresenceInterval) bool { return p.Cell == "S" || p.Cell == "P" },
		}},
		OnEpisode: func(ep Episode) { eps = append(eps, ep) },
	})
	seg.Observe(sdet("a", "E", 0, 10))
	seg.Observe(sdet("a", "P", 10, 20))
	seg.Observe(sdet("a", "S", 20, 30))
	seg.Observe(sdet("a", "C", 30, 35))
	seg.Flush()
	if len(eps) != 1 || eps[0].Label != "shopping" {
		t.Fatalf("episodes = %v", eps)
	}
	if cells := eps[0].Trace.Cells(); len(cells) != 2 || cells[0] != "P" || cells[1] != "S" {
		t.Fatalf("episode cells = %v", cells)
	}
}

// TestStreamMarkEvent: a §3.3 semantic event splits the covering interval
// with SplitAt semantics when the session closes.
func TestStreamMarkEvent(t *testing.T) {
	seg := NewStreamSegmenter(StreamOptions{Build: BuildOptions{SessionGap: 10 * time.Hour}})
	seg.Observe(sdet("a", "room006", 0, 16))
	seg.MarkEvent("a", streamDay.Add(9*time.Minute), NewAnnotations("goals", "visit", "goals", "buy"))
	got := seg.Flush()
	if len(got) != 1 {
		t.Fatalf("trajectories = %d", len(got))
	}
	tr := got[0].Trace
	if len(tr) != 2 {
		t.Fatalf("split produced %d tuples", len(tr))
	}
	if !tr[0].End.Equal(streamDay.Add(9*time.Minute)) || !tr[1].Start.Equal(streamDay.Add(9*time.Minute)) {
		t.Fatalf("split point wrong: %v | %v", tr[0], tr[1])
	}
	if tr[1].Cell != "room006" || tr[1].Transition != "" {
		t.Fatalf("second part = %v", tr[1])
	}
	if !tr[1].Ann.Has("goals", "buy") {
		t.Fatalf("second part ann = %v", tr[1].Ann)
	}
	// An event in a dead zone (inter-detection gap) is discarded; an event
	// beyond the closed trajectory stays pending.
	seg2 := NewStreamSegmenter(StreamOptions{Build: BuildOptions{SessionGap: 1 * time.Hour}})
	seg2.Observe(sdet("b", "E", 0, 5))
	seg2.Observe(sdet("b", "P", 30, 40))
	seg2.MarkEvent("b", streamDay.Add(10*time.Minute), NewAnnotations("goals", "x")) // in the gap
	seg2.MarkEvent("b", streamDay.Add(300*time.Minute), NewAnnotations("goals", "later"))
	out := seg2.Flush()
	if len(out) != 1 || len(out[0].Trace) != 2 {
		t.Fatalf("gap event must not split: %v", out)
	}
}

// TestStreamOpenSessions tracks the live-session gauge.
func TestStreamOpenSessions(t *testing.T) {
	seg := NewStreamSegmenter(StreamOptions{Build: BuildOptions{SessionGap: time.Hour}})
	if seg.OpenSessions() != 0 {
		t.Fatal("fresh segmenter has open sessions")
	}
	seg.Observe(sdet("a", "E", 0, 5))
	seg.Observe(sdet("b", "P", 0, 5))
	if seg.OpenSessions() != 2 {
		t.Fatalf("open = %d", seg.OpenSessions())
	}
	seg.Flush()
	if seg.OpenSessions() != 0 {
		t.Fatalf("open after flush = %d", seg.OpenSessions())
	}
	// Flush releases per-MO state entirely (bounded memory on long feeds).
	if len(seg.accums) != 0 {
		t.Fatalf("accums retained after flush: %d", len(seg.accums))
	}
	// The segmenter stays usable after a checkpoint flush.
	seg.Observe(sdet("a", "E", 500, 505))
	if seg.OpenSessions() != 1 {
		t.Fatalf("post-flush observe: open = %d", seg.OpenSessions())
	}
}

// TestMarkEventQueueBounded: stray future-dated events cannot grow the
// per-MO queue without bound.
func TestMarkEventQueueBounded(t *testing.T) {
	seg := NewStreamSegmenter(StreamOptions{Build: BuildOptions{SessionGap: time.Hour}})
	for i := 0; i < 10*maxPendingEvents; i++ {
		seg.MarkEvent("ghost", streamDay.Add(time.Duration(i)*time.Minute), NewAnnotations("k", "v"))
	}
	if got := len(seg.events["ghost"]); got != maxPendingEvents {
		t.Fatalf("pending events = %d, want %d", got, maxPendingEvents)
	}
	// The newest events are the ones kept.
	evs := seg.events["ghost"]
	if !evs[len(evs)-1].at.Equal(streamDay.Add(time.Duration(10*maxPendingEvents-1) * time.Minute)) {
		t.Fatalf("newest event dropped: %v", evs[len(evs)-1].at)
	}
}
