package core

import (
	"testing"
	"time"
)

func TestFindGaps(t *testing.T) {
	tr := Trace{
		{Cell: "a", Start: at("10:00:00"), End: at("10:10:00")},
		{Cell: "b", Start: at("10:10:05"), End: at("10:20:00")}, // 5s gap
		{Cell: "c", Start: at("11:20:00"), End: at("11:30:00")}, // 1h gap
	}
	gaps := tr.FindGaps(time.Minute, nil)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	g := gaps[0]
	if g.After != 1 || g.Duration != time.Hour || g.Kind != Hole {
		t.Errorf("gap = %+v", g)
	}
	// With a zero threshold the 5s gap is also reported.
	if gaps := tr.FindGaps(0, nil); len(gaps) != 2 {
		t.Errorf("gaps(0) = %d", len(gaps))
	}
	// A classifier can mark gaps bounded by exit cells as semantic.
	cls := func(before, after PresenceInterval, d time.Duration) GapKind {
		if before.Cell == "b" { // pretend b is an exit zone
			return SemanticGap
		}
		return Hole
	}
	gaps = tr.FindGaps(time.Minute, cls)
	if gaps[0].Kind != SemanticGap {
		t.Errorf("classified kind = %v", gaps[0].Kind)
	}
	if Hole.String() != "hole" || SemanticGap.String() != "semantic gap" {
		t.Error("GapKind strings")
	}
}

func TestInferMissingFigure6(t *testing.T) {
	// The paper's Figure 6 inference: detected in Zone60887 (E) for δt1,
	// then in Zone60890 (S) for δt2, with no direct E→S accessibility. The
	// visitor "must have passed from Zone60888 (P)": an extra tuple is
	// added, e.g. (checkpoint002, zone60888, 17:30:21, 17:31:42, {...}).
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zone60887", Start: at("17:00:00"), End: at("17:30:21")},
		{Cell: "zone60890", Start: at("17:31:42"), End: at("17:33:00")},
	}
	extra := NewAnnotations("goals", "cloakroomPickup", "goals", "souvenirBuy", "goals", "museumExit")
	out, infs, err := InferMissing(sg, tr, extra, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("inferred trace = %v", out)
	}
	mid := out[1]
	if mid.Cell != "zone60888" {
		t.Errorf("inferred cell = %q, want zone60888", mid.Cell)
	}
	if mid.Transition != "checkpoint002" {
		t.Errorf("inferred transition = %q, want checkpoint002", mid.Transition)
	}
	if !mid.Start.Equal(at("17:30:21")) || !mid.End.Equal(at("17:31:42")) {
		t.Errorf("inferred span = %v → %v", mid.Start, mid.End)
	}
	if !mid.Ann.Has(AnnInferred, "true") || !mid.Ann.Has("goals", "cloakroomPickup") {
		t.Errorf("inferred annotations = %v", mid.Ann)
	}
	if len(infs) != 1 || infs[0].From != "zone60887" || infs[0].To != "zone60890" {
		t.Errorf("inference records = %+v", infs)
	}
	// The arrival tuple's transition is reconstructed too.
	if out[2].Transition != "passage003" {
		t.Errorf("arrival transition = %q", out[2].Transition)
	}
	// The reconstructed trace is now strictly valid.
	if bad := out.CheckAccessibility(sg); len(bad) != 0 {
		t.Errorf("reconstructed trace still inaccessible: %v", bad)
	}
}

func TestInferMissingNoGap(t *testing.T) {
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zone60887", Start: at("17:00:00"), End: at("17:30:00")},
		{Cell: "zone60888", Start: at("17:30:00"), End: at("17:31:00")},
	}
	out, infs, err := InferMissing(sg, tr, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(infs) != 0 {
		t.Errorf("no inference expected: %v %v", out, infs)
	}
}

func TestInferMissingMultiHop(t *testing.T) {
	// E … C requires two inferred tuples (P and S), splitting the gap time.
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zone60887", Start: at("17:00:00"), End: at("17:30:00")},
		{Cell: "zoneC", Start: at("17:33:00"), End: at("17:34:00")},
	}
	out, infs, err := InferMissing(sg, tr, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || len(infs) != 2 {
		t.Fatalf("out=%d infs=%d", len(out), len(infs))
	}
	if out[1].Cell != "zone60888" || out[2].Cell != "zone60890" {
		t.Errorf("inferred cells = %q, %q", out[1].Cell, out[2].Cell)
	}
	// The 3-minute unobserved window tiles over the 2 inferred cells.
	if out[1].Duration() != 90*time.Second || out[2].Duration() != 90*time.Second {
		t.Errorf("inferred durations = %v, %v", out[1].Duration(), out[2].Duration())
	}
	if !out[1].Start.Equal(at("17:30:00")) || !out[2].End.Equal(at("17:33:00")) {
		t.Errorf("inferred tiling = %v → %v", out[1].Start, out[2].End)
	}
	if bad := out.CheckAccessibility(sg); len(bad) != 0 {
		t.Errorf("reconstructed trace invalid: %v", bad)
	}
}

func TestInferMissingUnreachable(t *testing.T) {
	// C → E is impossible (exit is one-way): failHard surfaces the error,
	// lenient mode keeps the trace as-is.
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zoneC", Start: at("17:00:00"), End: at("17:01:00")},
		{Cell: "zone60887", Start: at("17:10:00"), End: at("17:11:00")},
	}
	if _, _, err := InferMissing(sg, tr, nil, true); err == nil {
		t.Error("failHard must report unreachable pairs")
	}
	out, infs, err := InferMissing(sg, tr, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(infs) != 0 {
		t.Errorf("lenient mode must pass through: %v %v", out, infs)
	}
}

func TestInferMissingUnknownCell(t *testing.T) {
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zone60887", Start: at("17:00:00"), End: at("17:01:00")},
		{Cell: "ghost", Start: at("17:10:00"), End: at("17:11:00")},
	}
	if _, _, err := InferMissing(sg, tr, nil, true); err == nil {
		t.Error("unknown cell must error")
	}
}

func TestInferMissingShortTrace(t *testing.T) {
	sg := louvreMiniGraph(t)
	tr := Trace{{Cell: "zone60887", Start: at("17:00:00"), End: at("17:01:00")}}
	out, infs, err := InferMissing(sg, tr, nil, true)
	if err != nil || len(out) != 1 || len(infs) != 0 {
		t.Errorf("single-tuple trace: %v %v %v", out, infs, err)
	}
}

func TestInferMissingZeroGap(t *testing.T) {
	// Touching intervals (no time between detections) still get an inferred
	// zero-duration tuple rather than a crash.
	sg := louvreMiniGraph(t)
	tr := Trace{
		{Cell: "zone60887", Start: at("17:00:00"), End: at("17:30:00")},
		{Cell: "zone60890", Start: at("17:30:00"), End: at("17:31:00")},
	}
	out, infs, err := InferMissing(sg, tr, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(infs) != 1 {
		t.Fatalf("out=%d infs=%d", len(out), len(infs))
	}
	if out[1].Duration() != 0 {
		t.Errorf("zero gap must yield zero-duration inference, got %v", out[1].Duration())
	}
}
