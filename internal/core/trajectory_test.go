package core

import (
	"errors"
	"testing"
	"time"

	"sitm/internal/indoor"
	"sitm/internal/topo"
)

func visitAnn() Annotations { return NewAnnotations("activity", "museum-visit") }

func mustTrajectory(t *testing.T) Trajectory {
	t.Helper()
	traj, err := NewTrajectory("visitor42", paperTrace(), visitAnn())
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestNewTrajectory(t *testing.T) {
	traj := mustTrajectory(t)
	if traj.MO != "visitor42" {
		t.Errorf("MO = %q", traj.MO)
	}
	if !traj.Start().Equal(at("11:30:00")) || !traj.End().Equal(at("14:28:00")) {
		t.Errorf("bounds = %v %v", traj.Start(), traj.End())
	}
	if traj.Duration() != 2*time.Hour+58*time.Minute {
		t.Errorf("Duration = %v", traj.Duration())
	}
	if _, err := NewTrajectory("", paperTrace(), visitAnn()); !errors.Is(err, ErrNoMO) {
		t.Errorf("no MO: %v", err)
	}
	if _, err := NewTrajectory("v", nil, visitAnn()); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty trace: %v", err)
	}
	// Def 3.1: the annotation set must be non-empty.
	if _, err := NewTrajectory("v", paperTrace(), nil); !errors.Is(err, ErrNoTrajectoryAnn) {
		t.Errorf("no annotations: %v", err)
	}
}

func TestSubtrajectory(t *testing.T) {
	traj := mustTrajectory(t)
	sub, err := traj.Subtrajectory(0, 2, NewAnnotations("goal", "see-wing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Trace) != 2 || sub.MO != traj.MO {
		t.Errorf("sub = %+v", sub)
	}
	if !sub.IsSubtrajectoryOf(traj) {
		t.Error("extracted subtrajectory must verify IsSubtrajectoryOf")
	}
	// Whole trace is not a proper subtrajectory.
	if _, err := traj.Subtrajectory(0, 3, visitAnn()); !errors.Is(err, ErrNotSubtrajectory) {
		t.Errorf("whole trace: %v", err)
	}
	if _, err := traj.Subtrajectory(2, 1, visitAnn()); !errors.Is(err, ErrNotSubtrajectory) {
		t.Errorf("inverted range: %v", err)
	}
	if _, err := traj.Subtrajectory(-1, 1, visitAnn()); !errors.Is(err, ErrNotSubtrajectory) {
		t.Errorf("negative index: %v", err)
	}
	if _, err := traj.Subtrajectory(0, 1, nil); !errors.Is(err, ErrNoTrajectoryAnn) {
		t.Errorf("empty ann: %v", err)
	}
	// The paper allows A'traj to equal Atraj for subtrajectories.
	if _, err := traj.Subtrajectory(0, 1, visitAnn()); err != nil {
		t.Errorf("same annotations must be allowed for subtrajectories: %v", err)
	}
	// Mutating the sub must not touch the parent.
	sub.Trace[0].Cell = "mutated"
	if traj.Trace[0].Cell == "mutated" {
		t.Error("subtrajectory must deep-copy the trace")
	}
}

func TestIsSubtrajectoryOf(t *testing.T) {
	traj := mustTrajectory(t)
	other, _ := NewTrajectory("someone-else", paperTrace()[:2], visitAnn())
	if other.IsSubtrajectoryOf(traj) {
		t.Error("different MO cannot be a subtrajectory")
	}
	whole, _ := NewTrajectory("visitor42", paperTrace(), visitAnn())
	if whole.IsSubtrajectoryOf(traj) {
		t.Error("whole trajectory is not a PROPER subtrajectory")
	}
	foreign, _ := NewTrajectory("visitor42", Trace{
		{Cell: "elsewhere", Start: at("11:30:00"), End: at("11:31:00")},
	}, visitAnn())
	if foreign.IsSubtrajectoryOf(traj) {
		t.Error("non-matching tuples are not a subtrajectory")
	}
}

// louvreMiniGraph builds the zone-layer fragment of Figure 6's −2 floor:
// E(60887) ↔ P(60888) ↔ S(60890) → C (exit, one-way).
func louvreMiniGraph(t *testing.T) *indoor.SpaceGraph {
	t.Helper()
	sg := indoor.NewSpaceGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sg.AddLayer(indoor.Layer{ID: "zone", Kind: indoor.Semantic, Rank: 1}))
	must(sg.AddLayer(indoor.Layer{ID: "floor", Kind: indoor.Topographic, Rank: 2}))
	for _, z := range []string{"zone60887", "zone60888", "zone60890", "zoneC"} {
		must(sg.AddCell(indoor.Cell{ID: z, Layer: "zone", Floor: -2}))
	}
	must(sg.AddCell(indoor.Cell{ID: "floor-2", Layer: "floor", Floor: -2}))
	for _, z := range []string{"zone60887", "zone60888", "zone60890", "zoneC"} {
		must(sg.AddJoint("floor-2", z, topo.TPPi))
	}
	must(sg.AddBiAccess("zone60887", "zone60888", "checkpoint002"))
	must(sg.AddBiAccess("zone60888", "zone60890", "passage003"))
	must(sg.AddAccess("zone60890", "zoneC", "carrousel-exit")) // exit is one-way
	return sg
}

func TestValidateAgainst(t *testing.T) {
	sg := louvreMiniGraph(t)
	ok, _ := NewTrajectory("v", Trace{
		{Cell: "zone60887", Start: at("17:20:00"), End: at("17:30:00")},
		{Cell: "zone60888", Start: at("17:30:21"), End: at("17:31:42")},
		{Cell: "zone60890", Start: at("17:31:50"), End: at("17:33:00")},
	}, visitAnn())
	if err := ok.ValidateAgainst(sg, "zone", true); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	unknown, _ := NewTrajectory("v", Trace{
		{Cell: "nowhere", Start: at("10:00:00"), End: at("10:01:00")},
	}, visitAnn())
	if err := unknown.ValidateAgainst(sg, "", false); !errors.Is(err, ErrUnknownCell) {
		t.Errorf("unknown cell: %v", err)
	}
	wrongLayer, _ := NewTrajectory("v", Trace{
		{Cell: "floor-2", Start: at("10:00:00"), End: at("10:01:00")},
	}, visitAnn())
	if err := wrongLayer.ValidateAgainst(sg, "zone", false); !errors.Is(err, ErrWrongLayer) {
		t.Errorf("wrong layer: %v", err)
	}
	sparse, _ := NewTrajectory("v", Trace{
		{Cell: "zone60887", Start: at("17:20:00"), End: at("17:30:00")},
		{Cell: "zone60890", Start: at("17:31:50"), End: at("17:33:00")},
	}, visitAnn())
	if err := sparse.ValidateAgainst(sg, "zone", true); err == nil {
		t.Error("strict validation must flag E→S")
	}
	if err := sparse.ValidateAgainst(sg, "zone", false); err != nil {
		t.Errorf("lenient validation must pass: %v", err)
	}
}

func TestRollUp(t *testing.T) {
	sg := louvreMiniGraph(t)
	traj, _ := NewTrajectory("v", Trace{
		{Cell: "zone60887", Start: at("17:20:00"), End: at("17:30:00"),
			Ann: NewAnnotations("goals", "tempExhibition")},
		{Cell: "zone60888", Start: at("17:30:21"), End: at("17:31:42"),
			Ann: NewAnnotations("goals", "museumExit")},
		{Cell: "zone60890", Start: at("17:31:50"), End: at("17:33:00")},
	}, visitAnn())
	up, err := traj.RollUp(sg, "floor")
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Trace) != 1 {
		t.Fatalf("floor-level trace = %v", up.Trace)
	}
	got := up.Trace[0]
	if got.Cell != "floor-2" {
		t.Errorf("cell = %q", got.Cell)
	}
	if !got.Start.Equal(at("17:20:00")) || !got.End.Equal(at("17:33:00")) {
		t.Errorf("span = %v → %v", got.Start, got.End)
	}
	if !got.Ann.Has("goals", "tempExhibition") || !got.Ann.Has("goals", "museumExit") {
		t.Errorf("merged annotations = %v", got.Ann)
	}
	// Rolling up to a missing layer fails.
	if _, err := traj.RollUp(sg, "building"); err == nil {
		t.Error("missing ancestor must fail")
	}
}

func TestTrajectoryString(t *testing.T) {
	traj := mustTrajectory(t)
	s := traj.String()
	for _, want := range []string{"visitor42", "11:30:00", "14:28:00"} {
		if !contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
