package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func fastPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestMarkTransient(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
	err := MarkTransient(errBoom)
	if !IsTransient(err) {
		t.Fatal("marked error not IsTransient")
	}
	if !errors.Is(err, errBoom) {
		t.Fatal("marking lost the original error chain")
	}
	wrapped := fmt.Errorf("checkpoint: %w", err)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping hid the Transient marker")
	}
	if IsTransient(errBoom) {
		t.Fatal("unmarked error IsTransient")
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return MarkTransient(errBoom)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls; want nil after 3", err, calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(int) error {
		calls++
		return errBoom // not marked: a wedged WAL, not a failed checkpoint
	})
	if !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("Do = %v after %d calls; want boom after exactly 1", err, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(int) error {
		calls++
		return MarkTransient(errBoom)
	})
	if !errors.Is(err, errBoom) || calls != 5 {
		t.Fatalf("Do = %v after %d calls; want boom after 5", err, calls)
	}
}

func TestDoCustomClassifier(t *testing.T) {
	p := fastPolicy()
	p.Retryable = func(err error) bool { return errors.Is(err, errBoom) }
	calls := 0
	err := Do(context.Background(), p, func(int) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 5 {
		t.Fatalf("classifier not honoured: %v after %d calls", err, calls)
	}
}

func TestDoContextCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // sleep would block forever
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, p, func(int) error {
			calls++
			return MarkTransient(errBoom)
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errBoom) {
			t.Fatalf("Do = %v; want the last op error, not ctx.Err()", err)
		}
		if calls != 1 {
			t.Fatalf("calls = %d, want 1", calls)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
}

func TestDoPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, fastPolicy(), func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("Do = %v after %d calls; want Canceled after 0", err, calls)
	}
}

func TestDelaySchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1
		20 * time.Millisecond,  // 2
		40 * time.Millisecond,  // 3
		80 * time.Millisecond,  // 4
		100 * time.Millisecond, // 5: capped
		100 * time.Millisecond, // 6: stays capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	p := Policy{Jitter: 0.5}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		p.rand = func() float64 { return r }
		d := p.jittered(100 * time.Millisecond)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered(100ms) with U=%v = %v, outside ±50%%", r, d)
		}
	}
	// Jitter 0 is deterministic.
	p = Policy{}
	if d := p.jittered(time.Second); d != time.Second {
		t.Fatalf("zero jitter changed the delay: %v", d)
	}
}
