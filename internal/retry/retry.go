// Package retry implements capped exponential backoff with jitter and the
// retryable-error taxonomy the serving layer is built on (DESIGN.md §3.11).
//
// The taxonomy matters more than the loop. The durable store produces two
// very different failure shapes: *wedging* errors — a WAL write or fsync
// failed, the log is sticky-failed and every later call returns the same
// error, so retrying is pure waste — and *transient* errors — a checkpoint
// commit (temp-file write or manifest rename) failed before the commit
// point, leaving the store fully functional on its WALs, so the checkpoint
// can simply be attempted again. Code that knows which shape it produced
// marks the error with MarkTransient; Do retries only marked errors (plus
// a caller-supplied classifier) and stops immediately on everything else.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Transient is the sentinel wrapped by MarkTransient; errors.Is(err,
// Transient) reports whether any error in the chain was marked.
var Transient = errors.New("transient")

// transientErr wraps an error with the Transient marker while preserving
// the original chain for errors.Is/As.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() []error {
	return []error{e.err, Transient}
}

// MarkTransient marks err as safe to retry. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err carries the Transient marker.
func IsTransient(err error) bool {
	return errors.Is(err, Transient)
}

// Policy configures Do. The zero value is usable: 4 attempts, 10ms base
// delay doubling to a 1s cap, with ±50% jitter.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (0 = 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (0 = 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (0 = 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomised, in [0, 1]:
	// the sleep is delay * (1 - Jitter + Jitter*U[0,2)), so 0.5 yields
	// ±50%. Jitter spreads synchronized clients (retry storms) apart.
	Jitter float64
	// Retryable, when non-nil, extends the taxonomy: an error is retried
	// if it is marked Transient or Retryable returns true.
	Retryable func(error) bool
	// rand returns U[0,1); tests inject a deterministic source.
	rand func() float64
}

func (p Policy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 4
}

// Delay returns the backoff before attempt n (n = 1 delays the second
// attempt), without jitter. Exposed so servers can derive Retry-After
// hints from the same schedule clients back off on. Pure arithmetic on
// purpose — it runs on every retry decision, including the rejection
// paths of an overloaded server.
//
//sitm:hotpath
func (p Policy) Delay(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= mult
		if d >= float64(maxd) {
			return maxd
		}
	}
	if d > float64(maxd) {
		return maxd
	}
	return time.Duration(d)
}

// jittered applies the policy's jitter to a delay.
//
//sitm:hotpath
func (p Policy) jittered(d time.Duration) time.Duration {
	j := p.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j == 0 {
		return d
	}
	r := p.rand
	if r == nil {
		r = rand.Float64
	}
	f := 1 - j + j*2*r()
	return time.Duration(float64(d) * f)
}

// retryable reports whether the policy retries err.
func (p Policy) retryable(err error) bool {
	if IsTransient(err) {
		return true
	}
	return p.Retryable != nil && p.Retryable(err)
}

// Do runs op until it succeeds, exhausts the attempt budget, fails with a
// non-retryable error, or ctx is done. It returns nil on success; the
// last error otherwise. The attempt number passed to op is 1-based.
// Between attempts Do sleeps the jittered backoff, aborting early (with
// the last op error, not ctx.Err(), so callers see what actually failed)
// if ctx is cancelled mid-sleep.
func Do(ctx context.Context, p Policy, op func(attempt int) error) error {
	attempts := p.attempts()
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		last = op(attempt)
		if last == nil {
			return nil
		}
		if attempt >= attempts || !p.retryable(last) {
			return last
		}
		t := time.NewTimer(p.jittered(p.Delay(attempt)))
		select {
		case <-ctx.Done():
			t.Stop()
			return last
		case <-t.C:
		}
	}
}
