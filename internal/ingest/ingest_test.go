package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sitm/internal/core"
	"sitm/internal/store"
)

var day = time.Date(2017, 2, 14, 9, 0, 0, 0, time.UTC)

func det(mo, cell string, startMin, endMin int) core.Detection {
	return core.Detection{
		MO: mo, Cell: cell,
		Start: day.Add(time.Duration(startMin) * time.Minute),
		End:   day.Add(time.Duration(endMin) * time.Minute),
	}
}

// TestIngestorEndToEnd: a feed becomes a queryable store; batch flushes
// are transparent to the final state.
func TestIngestorEndToEnd(t *testing.T) {
	ing := New(nil, Options{
		Stream:    core.StreamOptions{Build: core.BuildOptions{SessionGap: time.Hour}},
		BatchSize: 3,
	})
	// Three visitors, two sessions each (split by >1h gaps).
	for m := 0; m < 3; m++ {
		mo := fmt.Sprintf("v%d", m)
		ing.Observe(det(mo, "E", 0, 10))
		ing.Observe(det(mo, "P", 10, 20))
		ing.Observe(det(mo, "S", 200, 210)) // new session
		ing.Observe(det(mo, "C", 210, 215))
	}
	ing.Flush()
	st := ing.Store()
	if st.Len() != 6 {
		t.Fatalf("stored = %d", st.Len())
	}
	stats := ing.Stats()
	if stats.Input != 12 || stats.Stored != 6 || stats.Pending != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Temporal queries against the ingested store.
	if got := st.InCellDuring("E", day, day.Add(5*time.Minute)); len(got) != 3 {
		t.Fatalf("InCellDuring E = %v", got)
	}
	if got := st.ThroughSequence("S", "C"); len(got) != 3 {
		t.Fatalf("ThroughSequence = %d", len(got))
	}
	for m := 0; m < 3; m++ {
		got, err := st.GetByMO(fmt.Sprintf("v%d", m))
		if err != nil || len(got) != 2 {
			t.Fatalf("v%d: %v, %d", m, err, len(got))
		}
	}
}

// TestIngestorBatchSizeOneWritesThrough: sessions land in the store the
// moment they close.
func TestIngestorBatchSizeOneWritesThrough(t *testing.T) {
	ing := New(store.New(), Options{
		Stream:    core.StreamOptions{Build: core.BuildOptions{SessionGap: time.Hour}},
		BatchSize: 1,
	})
	ing.Observe(det("a", "E", 0, 10))
	if ing.Store().Len() != 0 {
		t.Fatal("open session must not be stored")
	}
	ing.Observe(det("a", "P", 200, 210)) // closes session 1
	if ing.Store().Len() != 1 {
		t.Fatalf("closed session not stored: %d", ing.Store().Len())
	}
	ing.Flush()
	if ing.Store().Len() != 2 {
		t.Fatalf("flush missed the open session: %d", ing.Store().Len())
	}
}

// TestIngestorConcurrentFeeds: multiple goroutines feeding disjoint MOs
// while a reader queries — the ingestion path is race-clean end to end.
func TestIngestorConcurrentFeeds(t *testing.T) {
	ing := New(nil, Options{
		Stream:    core.StreamOptions{Build: core.BuildOptions{SessionGap: time.Hour}},
		BatchSize: 2,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < 10; v++ {
				mo := fmt.Sprintf("w%d-v%d", w, v)
				ing.Observe(det(mo, "E", v*500, v*500+10))
				ing.Observe(det(mo, "S", v*500+10, v*500+20))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ing.Store().Overlapping(day, day.Add(1000*time.Hour))
			ing.Stats()
		}
	}()
	wg.Wait()
	<-done
	ing.Flush()
	if got := ing.Store().Len(); got != 40 {
		t.Fatalf("stored = %d, want 40", got)
	}
}

// TestIngestorMarkEvent forwards §3.3 events into the closed trajectory.
func TestIngestorMarkEvent(t *testing.T) {
	ing := New(nil, Options{
		Stream: core.StreamOptions{Build: core.BuildOptions{SessionGap: time.Hour}},
	})
	ing.Observe(det("a", "room006", 0, 16))
	ing.MarkEvent("a", day.Add(9*time.Minute), core.NewAnnotations("goals", "buy"))
	ing.Flush()
	trajs := ing.Store().All()
	if len(trajs) != 1 || len(trajs[0].Trace) != 2 {
		t.Fatalf("split missing: %+v", trajs)
	}
}
