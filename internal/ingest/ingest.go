// Package ingest is the live ingestion engine: it wires the online
// StreamSegmenter (internal/core) to the incrementally-indexed trajectory
// store (internal/store) so a raw detection feed — a BLE positioning
// stream, a CSV file, a simulator in stream-emission mode — becomes a
// queryable store while the feed is still running. Trajectories enter the
// store the moment their session closes, in batches that amortize locking
// and interval-index maintenance (store.PutBatch); temporal queries against
// the store interleave freely with ingestion and never pay a rebuild.
package ingest

import (
	"sync"
	"time"

	"sitm/internal/core"
	"sitm/internal/store"
)

// Options tune an Ingestor.
type Options struct {
	// Stream configures the online segmenter (build options, gap
	// annotation, episode extraction, interval/episode callbacks).
	Stream core.StreamOptions
	// BatchSize is how many closed trajectories are buffered before one
	// PutBatch flushes them into the store (amortizing the write lock and
	// the interval-index merges). 0 defaults to 128; 1 writes through.
	BatchSize int
	// Shards is the shard count of the store New creates when handed a
	// nil store (0 = the store default, GOMAXPROCS). Ignored when the
	// caller supplies its own store.
	Shards int
}

// Stats report what an Ingestor has processed so far.
type Stats struct {
	core.BuildStats
	// Stored is how many closed trajectories have reached the store;
	// Pending is how many are buffered awaiting the next batch flush.
	Stored  int
	Pending int
}

// Ingestor pumps a detection stream into a trajectory store. It is safe
// for concurrent use: Observe calls from multiple feed goroutines are
// serialized internally, and the underlying store can be queried
// concurrently at any time.
type Ingestor struct {
	mu      sync.Mutex
	st      *store.Store
	seg     *core.StreamSegmenter
	batch   int
	pending []core.Trajectory
	stored  int
}

// New returns an Ingestor feeding st (a fresh store when nil, sharded per
// opts.Shards).
func New(st *store.Store, opts Options) *Ingestor {
	if st == nil {
		st = store.NewSharded(opts.Shards)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 128
	}
	return &Ingestor{
		st:    st,
		seg:   core.NewStreamSegmenter(opts.Stream),
		batch: batch,
	}
}

// Observe consumes one detection; any trajectory it closes is queued and,
// once a full batch accumulates, written to the store with one PutBatch.
func (ing *Ingestor) Observe(d core.Detection) {
	ing.mu.Lock()
	ing.observeLocked(d)
	ing.mu.Unlock()
}

// ObserveAll consumes a chunk of detections under one lock acquisition.
func (ing *Ingestor) ObserveAll(dets []core.Detection) {
	ing.mu.Lock()
	for _, d := range dets {
		ing.observeLocked(d)
	}
	ing.mu.Unlock()
}

func (ing *Ingestor) observeLocked(d core.Detection) {
	if t, ok := ing.seg.Observe(d); ok {
		ing.pending = append(ing.pending, t)
		if len(ing.pending) >= ing.batch {
			ing.flushPendingLocked()
		}
	}
}

// MarkEvent forwards a §3.3 semantic event to the segmenter: when the
// session containing at closes, the interval covering at is split there
// and the second part carries the after annotations.
func (ing *Ingestor) MarkEvent(mo string, at time.Time, after core.Annotations) {
	ing.mu.Lock()
	ing.seg.MarkEvent(mo, at, after)
	ing.mu.Unlock()
}

// Flush closes every open session and writes everything still pending to
// the store. Call at end of feed (or at a checkpoint: flushing mid-feed is
// safe, later detections simply start new sessions).
func (ing *Ingestor) Flush() {
	ing.mu.Lock()
	ing.pending = append(ing.pending, ing.seg.Flush()...)
	ing.flushPendingLocked()
	ing.mu.Unlock()
}

func (ing *Ingestor) flushPendingLocked() {
	if len(ing.pending) == 0 {
		return
	}
	ing.st.PutBatch(ing.pending)
	ing.stored += len(ing.pending)
	ing.pending = nil
}

// Store returns the underlying store; it may be queried concurrently with
// ingestion (trajectories become visible when their session closes and the
// batch they rode flushes).
func (ing *Ingestor) Store() *store.Store { return ing.st }

// Stats returns running ingestion statistics.
func (ing *Ingestor) Stats() Stats {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return Stats{
		BuildStats: ing.seg.Stats(),
		Stored:     ing.stored,
		Pending:    len(ing.pending),
	}
}
