// Streaming-vs-batch equivalence property (ISSUE 2 acceptance): the online
// StreamSegmenter fed a globally time-ordered detection stream in arbitrary
// chunks produces exactly the trajectories the batch builder extracts from
// the same dataset — across randomized generator seeds and randomized,
// shuffle-resistant chunk boundaries, on over 1k simulated trajectories.
package sitm_test

import (
	"math/rand"
	"testing"
	"time"

	"sitm"
)

// equivParams sizes a dataset to >1000 visits (≥1000 trajectories after
// session splitting).
func equivParams(seed int64) sitm.DatasetParams {
	p := sitm.DefaultDatasetParams()
	p.Seed = seed
	p.Visitors = 700
	p.ReturningVisitors = 250
	p.RepeatVisits = 330
	p.TargetDetections = 4300
	return p
}

func TestStreamBatchEquivalenceOn1kTrajectories(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size equivalence property")
	}
	opts := sitm.BuildOptions{
		DropZeroDuration: true,
		SessionGap:       10 * time.Hour,
	}
	for _, seed := range []int64{20170119, 7, 424242} {
		d, _, err := sitm.GenerateLouvreDataset(equivParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		batch, _ := sitm.BuildTrajectories(d.Detections(), opts)
		if len(batch) < 1000 {
			t.Fatalf("seed %d: only %d trajectories; the property needs ≥1000", seed, len(batch))
		}

		// Stream the same dataset in global time order, cut into random
		// chunks (the segmenter must be shuffle-resistant to boundaries).
		feed := d.DetectionsByTime()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		seg := sitm.NewStreamSegmenter(sitm.StreamOptions{Build: opts})
		var streamed []sitm.Trajectory
		for i := 0; i < len(feed); {
			n := 1 + rng.Intn(97)
			if i+n > len(feed) {
				n = len(feed) - i
			}
			streamed = append(streamed, seg.ObserveAll(feed[i:i+n])...)
			i += n
		}
		streamed = append(streamed, seg.Flush()...)

		if len(streamed) != len(batch) {
			t.Fatalf("seed %d: %d streamed vs %d batched", seed, len(streamed), len(batch))
		}
		sortByMOStart(streamed)
		sortByMOStart(batch)
		for i := range batch {
			a, b := streamed[i], batch[i]
			if a.MO != b.MO || len(a.Trace) != len(b.Trace) || !a.Ann.Equal(b.Ann) {
				t.Fatalf("seed %d traj %d: %s/%d vs %s/%d", seed, i, a.MO, len(a.Trace), b.MO, len(b.Trace))
			}
			for j := range b.Trace {
				pa, pb := a.Trace[j], b.Trace[j]
				if pa.Cell != pb.Cell || !pa.Start.Equal(pb.Start) || !pa.End.Equal(pb.End) {
					t.Fatalf("seed %d traj %d tuple %d differs: %v vs %v", seed, i, j, pa, pb)
				}
			}
		}
	}
}

func sortByMOStart(ts []sitm.Trajectory) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j], ts[j-1]
			if a.MO > b.MO || (a.MO == b.MO && !a.Start().Before(b.Start())) {
				break
			}
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
