package sitm_test

import (
	"testing"
	"time"

	"sitm"
)

// TestPublicAPIQuickstart exercises the documented quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(sg); err != nil {
		t.Fatal(err)
	}
	p := sitm.DefaultDatasetParams()
	p.Visitors = 50
	p.ReturningVisitors = 10
	p.RepeatVisits = 12
	p.TargetDetections = 260
	d, _, err := sitm.GenerateLouvreDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	trajs, stats := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true,
		SessionGap:       10 * time.Hour,
	})
	if stats.Trajectories == 0 {
		t.Fatal("no trajectories")
	}
	for _, tr := range trajs {
		if err := tr.ValidateAgainst(sg, sitm.LouvreZoneLayer, false); err != nil {
			t.Fatal(err)
		}
	}
	st := sitm.NewStore()
	st.PutAll(trajs)
	if st.Len() != len(trajs) {
		t.Fatal("store lost trajectories")
	}
}

// TestExperimentD1 reproduces the §4.1 statistics table at full scale
// through the public API (experiment D1 of DESIGN.md).
func TestExperimentD1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale D1 skipped in -short mode")
	}
	d, _, err := sitm.GenerateLouvreDataset(sitm.DefaultDatasetParams())
	if err != nil {
		t.Fatal(err)
	}
	s := sitm.ComputeDatasetStats(d)
	checks := []struct {
		name  string
		got   int
		want  int
		exact bool
	}{
		{"visits", s.Visits, 4945, true},
		{"visitors", s.Visitors, 3228, true},
		{"returning visitors", s.ReturningVisitors, 1227, true},
		{"repeat visits", s.RepeatVisits, 1717, true},
		{"zone detections", s.Detections, 20245, true},
		{"transitions", s.Transitions, 15300, true},
	}
	for _, c := range checks {
		if c.exact && c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if s.MaxVisitDuration != 7*time.Hour+41*time.Minute+37*time.Second {
		t.Errorf("max visit duration = %v", s.MaxVisitDuration)
	}
	if s.MaxDetectionDuration != 5*time.Hour+39*time.Minute+20*time.Second {
		t.Errorf("max detection duration = %v", s.MaxDetectionDuration)
	}
	if s.ZeroDurationPercent < 8 || s.ZeroDurationPercent > 12 {
		t.Errorf("zero-duration %% = %.1f", s.ZeroDurationPercent)
	}
}

// TestEndToEndMiningPipeline runs the full documented analytics pipeline on
// a seeded dataset: generate → clean → build → validate → mine → profile.
func TestEndToEndMiningPipeline(t *testing.T) {
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		t.Fatal(err)
	}
	p := sitm.DefaultDatasetParams()
	p.Visitors = 150
	p.ReturningVisitors = 50
	p.RepeatVisits = 70
	p.TargetDetections = 900
	d, _, err := sitm.GenerateLouvreDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true,
		SessionGap:       10 * time.Hour,
	})

	// Figure 3 series.
	ground := make(map[string]bool)
	for _, z := range sitm.LouvreZones() {
		if z.Floor == 0 {
			ground[z.ID] = true
		}
	}
	counts := sitm.DetectionCounts(d.Detections(), func(c string) bool { return ground[c] })
	if len(counts) != 11 {
		t.Errorf("choropleth zones = %d", len(counts))
	}

	// Transition model predicts something from the entrance.
	tm := sitm.NewTransitionMatrix(trajs)
	if _, _, ok := tm.PredictNext("zone60885"); !ok {
		t.Error("no prediction from the Pyramid Hall")
	}

	// Sequential patterns + rules.
	pats := sitm.PrefixSpan(sitm.SequencesOf(trajs), len(trajs)/10, 3)
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	_ = sitm.MineRules(pats, 0.3)

	// Floor switching (§5) after roll-up.
	switches, err := sitm.FloorSwitches(sg, trajs, sitm.LouvreFloorLayer)
	if err != nil {
		t.Fatal(err)
	}
	if len(switches) == 0 {
		t.Error("no floor switches observed")
	}

	// Visitor profiling on a sample.
	sample := trajs
	if len(sample) > 40 {
		sample = sample[:40]
	}
	sim := sitm.HierarchyCellSimilarity(sg, h)
	cl := sitm.KMedoids(sample, 3, func(a, b sitm.Trajectory) float64 {
		return sitm.TrajectorySimilarity(a, b, sim, 0.8)
	}, 7)
	if len(cl.Medoids) != 3 {
		t.Errorf("medoids = %v", cl.Medoids)
	}

	// Length of stay exists for the Mona Lisa zone.
	stays := sitm.LengthOfStay(trajs)
	found := false
	for _, s := range stays {
		if s.Cell == "zone60879" {
			found = true
			break
		}
	}
	if !found {
		t.Error("Salle des États never visited — weighting broken?")
	}
}

// TestPublicAPISemanticQueries exercises the semantic query planner facade
// end-to-end on the Louvre model: compile the hierarchy, attach it to a
// store, and run composed region/annotation/time plans plus region-level
// mining.
func TestPublicAPISemanticQueries(t *testing.T) {
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sitm.CompileRegions(sg, h)
	if err != nil {
		t.Fatal(err)
	}
	p := sitm.DefaultDatasetParams()
	p.Visitors, p.ReturningVisitors, p.RepeatVisits = 50, 10, 12
	p.TargetDetections = 260
	d, _, err := sitm.GenerateLouvreDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true,
		SessionGap:       10 * time.Hour,
	})
	st := sitm.NewStore()
	st.PutAll(trajs)
	st.AttachRegions(rt)

	// Region roll-up query: everyone in the Denon wing is also in the
	// museum; a wing visit implies a museum visit, never the reverse.
	denon, err := st.Select(sitm.QRegion(sitm.LouvreWingLayer, "denon"))
	if err != nil {
		t.Fatal(err)
	}
	museum, err := st.Select(sitm.QRegion(sitm.LouvreMuseumLayer, "louvre"))
	if err != nil {
		t.Fatal(err)
	}
	if len(denon) == 0 || len(museum) < len(denon) {
		t.Fatalf("denon %d, museum %d", len(denon), len(museum))
	}

	// Composed plan: wing + time window + annotation.
	if _, err := st.Select(sitm.QAnd(
		sitm.QRegion(sitm.LouvreWingLayer, "denon"),
		sitm.QTimeOverlap(trajs[0].Start(), trajs[0].End()),
		sitm.QHasAnnotation("activity", "visit"),
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SelectMOs(sitm.QOr(
		sitm.QRegion(sitm.LouvreWingLayer, "sully"),
		sitm.QThroughRegions(
			sitm.RegionRef{Layer: sitm.LouvreWingLayer, ID: "napoleon"},
			sitm.RegionRef{Layer: sitm.LouvreWingLayer, ID: "denon"},
		),
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Select(sitm.QRegion("Ghost", "x")); err == nil {
		t.Fatal("unknown region layer must error")
	}

	// Region-level mining off the store handoff: wing-granularity patterns.
	dict, seqs := st.Sequences()
	pats, err := sitm.PrefixSpanRegions(dict, seqs, rt, sitm.LouvreWingLayer, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no wing-level patterns")
	}
}

// TestPublicAPIDurableStore exercises the documented durability path:
// OpenStore → writes → Sync → crash-free reopen → Checkpoint → reopen
// from segments, observably the same store throughout.
func TestPublicAPIDurableStore(t *testing.T) {
	dir := t.TempDir()
	p := sitm.DefaultDatasetParams()
	p.Visitors = 30
	p.ReturningVisitors = 5
	p.RepeatVisits = 6
	p.TargetDetections = 150
	d, _, err := sitm.GenerateLouvreDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true,
		SessionGap:       10 * time.Hour,
	})

	st, err := sitm.OpenStore(dir, sitm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutAll(trajs)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	stats, ok := st.Durability()
	if !ok || stats.Dir != dir {
		t.Fatalf("Durability = %+v, %v", stats, ok)
	}
	want := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = sitm.OpenStore(dir, sitm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != want {
		t.Fatalf("reopen lost trajectories: %d vs %d", st.Len(), want)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = sitm.OpenStore(dir, sitm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != want {
		t.Fatalf("post-checkpoint reopen lost trajectories: %d vs %d", st.Len(), want)
	}
}
