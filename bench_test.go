// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each benchmark both measures
// the cost of producing the artefact and asserts its shape, so a behavioural
// regression fails the bench run. Absolute timings are machine-dependent;
// the asserted shapes are not.
package sitm_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"sitm"
)

// benchParams is a reduced-size calibration for per-iteration work; the
// exact §4.1 numbers are exercised once in TestExperimentD1 (facade_test.go)
// and by cmd/sitm stats.
func benchParams() sitm.DatasetParams {
	p := sitm.DefaultDatasetParams()
	p.Visitors = 300
	p.ReturningVisitors = 110
	p.RepeatVisits = 155
	p.TargetDetections = 1880
	return p
}

// BenchmarkTable1Terminology regenerates Table 1: the terminology
// correspondence between the n-intersection model, the primal space, the
// dual space (NRG) and the navigation view.
func BenchmarkTable1Terminology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sitm.Table1()
		if len(rows) != 3 {
			b.Fatalf("Table 1 rows = %d", len(rows))
		}
		if rows[0].DualNavigation != "state" || rows[1].DualNavigation != "transition" {
			b.Fatal("Table 1 content drifted")
		}
	}
}

// BenchmarkFigure1DenonGraph rebuilds the Figure 1 two-level hierarchical
// graph of the central Denon wing and checks its signature properties: the
// 5a/5b/5c subdivision of hall 5 and the Salle des États one-way rule.
func BenchmarkFigure1DenonGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sg, err := sitm.LouvreFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if got := len(sg.ActiveStates("5", "denon1-fine")); got != 3 {
			b.Fatalf("hall 5 splits into %d cells", got)
		}
		if !sg.Accessible("4", "2") || sg.Accessible("2", "4") {
			b.Fatal("Salle des États one-way rule broken")
		}
	}
}

// BenchmarkFigure2Hierarchy rebuilds the full five-layer-plus-zone Louvre
// hierarchy of Figure 2 and §4.2 and revalidates it.
func BenchmarkFigure2Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sg, h, err := sitm.BuildLouvre()
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Validate(sg); err != nil {
			b.Fatal(err)
		}
		if len(h.Layers) != 6 {
			b.Fatalf("hierarchy depth = %d", len(h.Layers))
		}
	}
}

// BenchmarkFigure3Choropleth regenerates the Figure 3 choropleth series:
// visitor detection counts over the 11 ground-floor zones.
func BenchmarkFigure3Choropleth(b *testing.B) {
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	dets := d.Detections()
	ground := make(map[string]bool)
	for _, z := range sitm.LouvreZones() {
		if z.Floor == 0 {
			ground[z.ID] = true
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := sitm.DetectionCounts(dets, func(c string) bool { return ground[c] })
		if len(counts) != 11 {
			b.Fatalf("ground-floor zones with detections = %d, want 11", len(counts))
		}
		for j := 1; j < len(counts); j++ {
			if counts[j].Count > counts[j-1].Count {
				b.Fatal("choropleth not sorted")
			}
		}
	}
}

// BenchmarkFigure4Coverage regenerates the Figure 4 analysis: exhibit RoIs
// do not fully cover their room, while rooms do tile their zone — the
// paper's argument against the full-coverage hypothesis.
func BenchmarkFigure4Coverage(b *testing.B) {
	sg, _, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roi, err := sg.Coverage("room60853_1", 25)
		if err != nil {
			b.Fatal(err)
		}
		room, err := sg.Coverage("zone60853", 25)
		if err != nil {
			b.Fatal(err)
		}
		if roi.Ratio >= 0.9 || room.Ratio < 0.9 {
			b.Fatalf("coverage shape broken: RoIs %.2f, rooms %.2f", roi.Ratio, room.Ratio)
		}
	}
}

// BenchmarkFigure5Episodes regenerates the Figure 5 overlapping episodic
// segmentation: "exit museum" over E→P→S→C and "buy souvenir" over its
// E→P→S prefix.
func BenchmarkFigure5Episodes(b *testing.B) {
	day := time.Date(2017, 2, 14, 17, 0, 0, 0, time.UTC)
	trace := sitm.Trace{
		{Cell: "zone60887", Start: day, End: day.Add(30 * time.Minute)},
		{Transition: "checkpoint002", Cell: "zone60888", Start: day.Add(30 * time.Minute), End: day.Add(32 * time.Minute)},
		{Transition: "passage003", Cell: "zone60890", Start: day.Add(32 * time.Minute), End: day.Add(50 * time.Minute)},
		{Transition: "carrousel-exit", Cell: "zone60891", Start: day.Add(50 * time.Minute), End: day.Add(55 * time.Minute)},
	}
	parent, err := sitm.NewTrajectory("figure5", trace, sitm.NewAnnotations("activity", "visit"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exit, err := sitm.NewEpisode(parent, 1, 4, "exit museum",
			sitm.NewAnnotations("goals", "museumExit"), nil)
		if err != nil {
			b.Fatal(err)
		}
		buy, err := sitm.NewEpisode(parent, 0, 3, "buy souvenir",
			sitm.NewAnnotations("goals", "buySouvenir"), nil)
		if err != nil {
			b.Fatal(err)
		}
		seg := sitm.Segmentation{Parent: parent, Episodes: []sitm.Episode{exit, buy}}
		if err := seg.Validate(); err != nil {
			b.Fatal(err)
		}
		if len(seg.OverlappingPairs()) != 1 {
			b.Fatal("the two goal episodes must overlap in time")
		}
	}
}

// BenchmarkFigure6Inference regenerates the Figure 6 inference: a visitor
// detected in Zone 60887 then Zone 60890 must have passed through Zone
// 60888; an extra tuple is added to the trace.
func BenchmarkFigure6Inference(b *testing.B) {
	sg, _, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	day := time.Date(2017, 2, 14, 17, 0, 0, 0, time.UTC)
	sparse := sitm.Trace{
		{Cell: "zone60887", Start: day, End: day.Add(30*time.Minute + 21*time.Second)},
		{Cell: "zone60890", Start: day.Add(31*time.Minute + 42*time.Second), End: day.Add(40 * time.Minute)},
	}
	extra := sitm.NewAnnotations("goals", "cloakroomPickup", "goals", "souvenirBuy", "goals", "museumExit")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, infs, err := sitm.InferMissing(sg, sparse, extra, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 3 || len(infs) != 1 || out[1].Cell != "zone60888" {
			b.Fatalf("inference shape: %d tuples, %d inferences", len(out), len(infs))
		}
		if out[1].Transition != "checkpoint002" {
			b.Fatalf("inferred transition = %q", out[1].Transition)
		}
	}
}

// BenchmarkDatasetStats regenerates the §4.1 statistics table on a
// reduced-size seeded dataset (exact population identities still hold).
func BenchmarkDatasetStats(b *testing.B) {
	p := benchParams()
	env, _, err := sitm.GenerateLouvreDataset(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sitm.ComputeDatasetStats(env)
		if s.Visits != p.Visitors+p.RepeatVisits || s.Detections != p.TargetDetections {
			b.Fatalf("stats drifted: %+v", s)
		}
	}
}

// BenchmarkEventSplit measures the §3.3 event-based interval split (the
// room006 goal-change example).
func BenchmarkEventSplit(b *testing.B) {
	day := time.Date(2017, 2, 14, 14, 12, 0, 0, time.UTC)
	tr := sitm.Trace{{
		Transition: "door005", Cell: "room006",
		Start: day, End: day.Add(16 * time.Minute),
		Ann: sitm.NewAnnotations("goals", "visit"),
	}}
	after := sitm.NewAnnotations("goals", "visit", "goals", "buy")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := tr.SplitAt(0, day.Add(9*time.Minute+46*time.Second), after)
		if err != nil || len(out) != 2 {
			b.Fatalf("split: %v, %d tuples", err, len(out))
		}
	}
}

// BenchmarkRollupAblation measures the §3.2 claim that one dataset serves
// multiple granularities: the same zone-level trajectories are mined at
// zone level and, after roll-up, at floor and wing level.
func BenchmarkRollupAblation(b *testing.B) {
	sg, _, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	if len(trajs) == 0 {
		b.Fatal("no trajectories")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zonePatterns := sitm.PrefixSpan(sitm.SequencesOf(trajs), len(trajs)/10, 3)
		floorTrajs := make([]sitm.Trajectory, 0, len(trajs))
		for _, t := range trajs {
			up, err := t.RollUp(sg, sitm.LouvreFloorLayer)
			if err != nil {
				b.Fatal(err)
			}
			floorTrajs = append(floorTrajs, up)
		}
		floorPatterns := sitm.PrefixSpan(sitm.SequencesOf(floorTrajs), len(trajs)/10, 3)
		if len(zonePatterns) == 0 || len(floorPatterns) == 0 {
			b.Fatal("patterns vanished")
		}
		// Floor-level mining runs over a far coarser alphabet.
		if len(floorAlphabet(floorTrajs)) >= len(floorAlphabet(trajs)) {
			b.Fatal("roll-up did not coarsen the alphabet")
		}
	}
}

func floorAlphabet(trajs []sitm.Trajectory) map[string]bool {
	set := make(map[string]bool)
	for _, t := range trajs {
		for _, c := range t.Trace.DistinctCells() {
			set[c] = true
		}
	}
	return set
}

// BenchmarkDirectedAblation contrasts the paper's directed accessibility
// NRGs against an undirected reading: paths legal in the undirected view
// (re-entering through the Carrousel exit, entering the Salle des États
// from room 2) are illegal in the directed model.
func BenchmarkDirectedAblation(b *testing.B) {
	sg, _, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	fig1, err := sitm.LouvreFigure1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		directed, err := sg.AccessGraph(sitm.LouvreZoneLayer)
		if err != nil {
			b.Fatal(err)
		}
		undirected := directed.Undirected()
		if _, err := directed.ShortestPath("zone60891", "zone60890"); err == nil {
			b.Fatal("directed model must forbid re-entry through the exit")
		}
		if _, err := undirected.ShortestPath("zone60891", "zone60890"); err != nil {
			b.Fatal("undirected model would (wrongly) allow it")
		}
		if fig1.Accessible("2", "4") {
			b.Fatal("one-way room rule lost")
		}
	}
}

// ---- Performance benches on the substrates ------------------------------

// BenchmarkBuildLouvre measures constructing the full ~750-cell model.
func BenchmarkBuildLouvre(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := sitm.BuildLouvre(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateDataset measures the seeded generator.
func BenchmarkGenerateDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := sitm.GenerateLouvreDataset(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTrajectories measures detection→trajectory extraction.
func BenchmarkBuildTrajectories(b *testing.B) {
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	dets := d.Detections()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trajs, _ := sitm.BuildTrajectories(dets, sitm.BuildOptions{
			DropZeroDuration: true, SessionGap: 10 * time.Hour,
		})
		if len(trajs) == 0 {
			b.Fatal("no trajectories")
		}
	}
}

// BenchmarkTrilateration measures one positioning solve against the
// Louvre's beacon plant.
func BenchmarkTrilateration(b *testing.B) {
	beacons := sitm.LouvreBeacons()
	model := sitm.PathLoss{Exponent: 2.2}
	// Strongest few beacons around a point in zone 60853.
	var meas []sitm.Measurement
	for id, bc := range beacons {
		if strings.HasPrefix(id, "beacon60853_") {
			d := bc.Pos.Dist(sitm.Point{X: 330, Y: 30})
			meas = append(meas, sitm.Measurement{BeaconID: id, RSSI: model.RSSI(bc, d, nil)})
			if len(meas) == 8 {
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sitm.Trilaterate(beacons, meas, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefixSpan measures sequential pattern mining on the synthetic
// visit sequences.
func BenchmarkPrefixSpan(b *testing.B) {
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	seqs := sitm.SequencesOf(trajs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sitm.PrefixSpan(seqs, len(seqs)/20, 4); len(got) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// BenchmarkStoreQueries measures the indexed store queries.
func BenchmarkStoreQueries(b *testing.B) {
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	st := sitm.NewStore()
	st.PutAll(trajs)
	from := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ThroughCell("zone60879")
		st.InCellDuring("zone60885", from, to)
		st.Overlapping(from, to)
	}
}

// ---- Analytics-engine before/after benches (DESIGN.md §4, E-series) -----

// benchStore loads a seeded dataset into a store and returns it with its
// trajectories, warming the interval indexes so the benches time queries,
// not the one-off lazy rebuild.
func benchStore(b *testing.B) (*sitm.Store, []sitm.Trajectory) {
	b.Helper()
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	st := sitm.NewStore()
	st.PutAll(trajs)
	return st, trajs
}

// benchWindow is a narrow one-day window inside the dataset's span — the
// selective query shape interval indexing exists for.
func benchWindow() (time.Time, time.Time) {
	from := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	return from, from.AddDate(0, 0, 1)
}

// BenchmarkStoreOverlappingScan is the seed's implementation of
// Overlapping: a linear scan over every stored trajectory. Kept as the
// "before" baseline for BenchmarkStoreOverlappingIndexed.
func BenchmarkStoreOverlappingScan(b *testing.B) {
	st, _ := benchStore(b)
	all := st.All()
	from, to := benchWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []sitm.Trajectory
		for _, t := range all {
			if !t.Start().After(to) && !t.End().Before(from) {
				out = append(out, t)
			}
		}
		if len(out) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkStoreOverlappingIndexed measures the interval-indexed query on
// the same window: sorted starts bound the candidates, the max-end segment
// tree prunes the rest.
func BenchmarkStoreOverlappingIndexed(b *testing.B) {
	st, _ := benchStore(b)
	from, to := benchWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := st.Overlapping(from, to); len(out) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkStoreInCellDuringScan is the seed's InCellDuring: walk the
// cell's posting list and scan every presence interval of every candidate.
func BenchmarkStoreInCellDuringScan(b *testing.B) {
	st, _ := benchStore(b)
	cellTrajs := st.ThroughCell("zone60885")
	from, to := benchWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[string]bool)
		for _, t := range cellTrajs {
			if seen[t.MO] {
				continue
			}
			for _, p := range t.Trace {
				if p.Cell == "zone60885" && !p.Start.After(to) && !p.End.Before(from) {
					seen[t.MO] = true
					break
				}
			}
		}
	}
}

// BenchmarkStoreInCellDuringIndexed measures the per-cell interval index.
func BenchmarkStoreInCellDuringIndexed(b *testing.B) {
	st, _ := benchStore(b)
	from, to := benchWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.InCellDuring("zone60885", from, to)
	}
}

// ---- E5: sustained mixed write/query throughput (DESIGN.md §3.5) --------

// e5Params sizes the 10k-trajectory dataset of the acceptance criterion.
func e5Params() sitm.DatasetParams {
	p := sitm.DefaultDatasetParams()
	p.Visitors = 6800
	p.ReturningVisitors = 2600
	p.RepeatVisits = 3500
	p.TargetDetections = 42000
	return p
}

// e5Trajectories builds the 10k-trajectory working set once per bench
// binary run.
var e5Cache []sitm.Trajectory

func e5Trajectories(b testing.TB) []sitm.Trajectory {
	b.Helper()
	if e5Cache == nil {
		d, _, err := sitm.GenerateLouvreDataset(e5Params())
		if err != nil {
			b.Fatal(err)
		}
		trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
			DropZeroDuration: true, SessionGap: 10 * time.Hour,
		})
		if len(trajs) < 10000 {
			b.Fatalf("E5 dataset has %d trajectories, want ≥10000", len(trajs))
		}
		e5Cache = trajs
	}
	return e5Cache
}

// e5Rounds is the per-iteration mixed workload: rounds of a small write
// burst followed by interleaved temporal queries — the serving pattern of
// a live ingestion feed with concurrent analytics.
const (
	e5Rounds     = 20
	e5BurstSize  = 10
	e5QueriesPer = 6
)

// e5Windows returns narrow one-day query windows spread over the dataset.
func e5Window(i int) (time.Time, time.Time) {
	from := time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i%90)
	return from, from.AddDate(0, 0, 1)
}

// rebuildStore replicates the seed's index discipline: any write marks the
// interval indexes dirty and the next temporal query pays a full
// O(n log n) rebuild (sort every trajectory span and every per-cell
// presence interval). It is the "before" of E5.
type rebuildStore struct {
	trajs []sitm.Trajectory
	dirty bool
	spans []e5Span            // sorted by start once rebuilt
	cells map[string][]e5Span // sorted per cell once rebuilt
}

type e5Span struct {
	start, end time.Time
	ref        int
}

func (rs *rebuildStore) put(ts ...sitm.Trajectory) {
	rs.trajs = append(rs.trajs, ts...)
	rs.dirty = true
}

func (rs *rebuildStore) rebuild() {
	rs.spans = rs.spans[:0]
	rs.cells = make(map[string][]e5Span)
	for i, t := range rs.trajs {
		rs.spans = append(rs.spans, e5Span{t.Start(), t.End(), i})
		for _, p := range t.Trace {
			rs.cells[p.Cell] = append(rs.cells[p.Cell], e5Span{p.Start, p.End, i})
		}
	}
	sortSpans(rs.spans)
	for _, sp := range rs.cells {
		sortSpans(sp)
	}
	rs.dirty = false
}

func sortSpans(sp []e5Span) {
	sort.Slice(sp, func(i, j int) bool { return sp[i].start.Before(sp[j].start) })
}

func (rs *rebuildStore) overlapping(from, to time.Time) int {
	if rs.dirty {
		rs.rebuild()
	}
	return scanSpans(rs.spans, from, to)
}

// inCellDuring counts distinct MOs (matching Store.InCellDuring).
func (rs *rebuildStore) inCellDuring(cell string, from, to time.Time) int {
	if rs.dirty {
		rs.rebuild()
	}
	sp := rs.cells[cell]
	hi := sort.Search(len(sp), func(i int) bool { return sp[i].start.After(to) })
	seen := make(map[string]bool)
	for _, s := range sp[:hi] {
		if !s.end.Before(from) {
			seen[rs.trajs[s.ref].MO] = true
		}
	}
	return len(seen)
}

// scanSpans counts matches over the sorted prefix with start ≤ to.
func scanSpans(sp []e5Span, from, to time.Time) int {
	hi := sort.Search(len(sp), func(i int) bool { return sp[i].start.After(to) })
	n := 0
	for _, s := range sp[:hi] {
		if !s.end.Before(from) {
			n++
		}
	}
	return n
}

// BenchmarkStoreMixedRebuild (E5 before): the seed discipline on the mixed
// workload — every write burst invalidates everything, every following
// query rebuilds 10k trajectory spans plus ~40k per-cell intervals.
func BenchmarkStoreMixedRebuild(b *testing.B) {
	trajs := e5Trajectories(b)
	preload, stream := trajs[:9000], trajs[9000:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs := &rebuildStore{}
		rs.put(preload...)
		rs.rebuild()
		b.StartTimer()
		w := e5Workload(stream,
			func(ts []sitm.Trajectory) { rs.put(ts...) },
			rs.overlapping, rs.inCellDuring)
		if w == 0 {
			b.Fatal("queries matched nothing")
		}
	}
}

// BenchmarkStoreMixedIncremental (E5 after): the same mixed workload on
// the incremental store — PutBatch merges bursts into the index buffers,
// queries never rebuild. The acceptance criterion is ≥5× over the rebuild
// baseline; TestE5IncrementalBeatsRebuild enforces it in tier-1.
func BenchmarkStoreMixedIncremental(b *testing.B) {
	trajs := e5Trajectories(b)
	preload, stream := trajs[:9000], trajs[9000:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := sitm.NewStore()
		st.PutAll(preload)
		b.StartTimer()
		w := e5Workload(stream,
			st.PutBatch,
			func(from, to time.Time) int { return len(st.Overlapping(from, to)) },
			func(cell string, from, to time.Time) int { return len(st.InCellDuring(cell, from, to)) })
		if w == 0 {
			b.Fatal("queries matched nothing")
		}
	}
}

// e5Workload drives one full mixed write/query pass (the E5 iteration
// body) against either store flavour via the two closures.
func e5Workload(stream []sitm.Trajectory, put func([]sitm.Trajectory), overlapping func(time.Time, time.Time) int, inCell func(string, time.Time, time.Time) int) int {
	w := 0
	for r := 0; r < e5Rounds; r++ {
		burst := stream[(r*e5BurstSize)%len(stream):]
		if len(burst) > e5BurstSize {
			burst = burst[:e5BurstSize]
		}
		put(burst)
		for q := 0; q < e5QueriesPer; q++ {
			from, to := e5Window(r*e5QueriesPer + q)
			if q%2 == 0 {
				w += overlapping(from, to)
			} else {
				w += inCell("zone60885", from, to)
			}
		}
	}
	return w
}

// TestE5IncrementalBeatsRebuild enforces the E5 acceptance criterion in
// tier-1: on the 10k-trajectory mixed write/query workload, incremental
// index maintenance must beat the seed's full-rebuild discipline by ≥5×
// (in practice the gap is one to two orders of magnitude; 5× leaves slack
// for noisy CI machines).
func TestE5IncrementalBeatsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E5 workload")
	}
	trajs := e5Trajectories(t)
	preload, stream := trajs[:9000], trajs[9000:]

	rs := &rebuildStore{}
	rs.put(preload...)
	rs.rebuild()
	startRebuild := time.Now()
	wRebuild := e5Workload(stream,
		func(ts []sitm.Trajectory) { rs.put(ts...) },
		rs.overlapping, rs.inCellDuring)
	rebuildDur := time.Since(startRebuild)

	// Best of three for the incremental side to shave scheduler noise off
	// the fast path (the slow path dominates the ratio either way).
	var incDur time.Duration
	wInc := 0
	for rep := 0; rep < 3; rep++ {
		st := sitm.NewStore()
		st.PutAll(preload)
		start := time.Now()
		wInc = e5Workload(stream,
			st.PutBatch,
			func(from, to time.Time) int { return len(st.Overlapping(from, to)) },
			func(cell string, from, to time.Time) int { return len(st.InCellDuring(cell, from, to)) })
		if d := time.Since(start); rep == 0 || d < incDur {
			incDur = d
		}
	}

	if wRebuild != wInc {
		t.Fatalf("workloads disagree: rebuild saw %d matches, incremental %d", wRebuild, wInc)
	}
	if wInc == 0 {
		t.Fatal("workload matched nothing")
	}
	if incDur*5 > rebuildDur {
		t.Fatalf("incremental %v not ≥5x faster than rebuild %v (%.1fx)",
			incDur, rebuildDur, float64(rebuildDur)/float64(incDur))
	}
	t.Logf("E5: rebuild %v, incremental %v (%.0fx)", rebuildDur, incDur, float64(rebuildDur)/float64(incDur))
}

// ---- E6: interned vs legacy profiling pipeline (DESIGN.md §3.6) ----------

// e6Params sizes the 1k-trajectory dataset of the E6 acceptance criterion
// (scaled from the §4.1 calibration like E5's 10k variant).
func e6Params() sitm.DatasetParams {
	p := sitm.DefaultDatasetParams()
	p.Visitors = 680
	p.ReturningVisitors = 260
	p.RepeatVisits = 360
	p.TargetDetections = 4300
	return p
}

// e6Cache holds the 1k-trajectory working set, built once per binary run.
var e6Cache []sitm.Trajectory

func e6Trajectories(b testing.TB) []sitm.Trajectory {
	b.Helper()
	if e6Cache == nil {
		d, _, err := sitm.GenerateLouvreDataset(e6Params())
		if err != nil {
			b.Fatal(err)
		}
		trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
			DropZeroDuration: true, SessionGap: 10 * time.Hour,
		})
		if len(trajs) < 1000 {
			b.Fatalf("E6 dataset has %d trajectories, want ≥1000", len(trajs))
		}
		e6Cache = trajs[:1000]
	}
	return e6Cache
}

const (
	e6K             = 8
	e6Seed          = 7
	e6SpatialWeight = 0.7
)

// e6Hierarchy builds the Louvre model once for the E6 cell kernel.
func e6Hierarchy(b testing.TB) sitm.CellSimilarity {
	b.Helper()
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	return sitm.HierarchyCellSimilarity(sg, h)
}

// legacyE6DTW is the seed's DTW: full 2-D DP allocated per pair, the cell
// kernel re-evaluated for every (i, j) position pair.
func legacyE6DTW(a, b []string, sim sitm.CellSimilarity) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	const inf = 1 << 30
	type cell struct {
		cost float64
		len  int
	}
	dp := make([][]cell, len(a)+1)
	for i := range dp {
		dp[i] = make([]cell, len(b)+1)
		for j := range dp[i] {
			dp[i][j] = cell{cost: inf}
		}
	}
	dp[0][0] = cell{}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			local := 1 - sim(a[i-1], b[j-1])
			best := dp[i-1][j-1]
			if dp[i-1][j].cost < best.cost {
				best = dp[i-1][j]
			}
			if dp[i][j-1].cost < best.cost {
				best = dp[i][j-1]
			}
			dp[i][j] = cell{cost: best.cost + local, len: best.len + 1}
		}
	}
	end := dp[len(a)][len(b)]
	if end.len == 0 {
		return 0
	}
	s := 1 - end.cost/float64(end.len)
	if s < 0 {
		return 0
	}
	return s
}

// legacyE6TrajSim is the seed's combined kernel: string DTW + map-built
// annotation Jaccard, per pair.
func legacyE6TrajSim(a, b sitm.Trajectory, sim sitm.CellSimilarity, w float64) float64 {
	spatial := legacyE6DTW(a.Trace.Cells(), b.Trace.Cells(), sim)
	semantic := a.Ann.Jaccard(b.Ann)
	return w*spatial + (1-w)*semantic
}

// legacyE6KMedoidsMatrix is the seed's PAM refinement: a full O(n·k)
// reassignment per candidate swap and a linear medoid-membership scan.
func legacyE6KMedoidsMatrix(sim [][]float64, k int, seed int64) sitm.Clusters {
	n := len(sim)
	if k <= 0 || n == 0 {
		return sitm.Clusters{}
	}
	if k > n {
		k = n
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = 1 - sim[i][j]
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	sort.Ints(medoids)
	assign := make([]int, n)
	assignAll := func() float64 {
		var total float64
		for i := 0; i < n; i++ {
			best, bestD := 0, dist[i][medoids[0]]
			for c := 1; c < k; c++ {
				if d := dist[i][medoids[c]]; d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			total += bestD
		}
		return total
	}
	contains := func(xs []int, x int) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}
	cost := assignAll()
	for iter := 0; iter < 50; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				old := medoids[c]
				medoids[c] = cand
				if newCost := assignAll(); newCost < cost-1e-12 {
					cost = newCost
					improved = true
				} else {
					medoids[c] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	assignAll()
	return sitm.Clusters{Medoids: medoids, Assign: assign}
}

// e6Legacy runs the seed-discipline profiling pipeline: parallel pairwise
// matrix over the string kernel, then the naive PAM.
func e6Legacy(trajs []sitm.Trajectory, sim sitm.CellSimilarity) ([][]float64, sitm.Clusters) {
	m := sitm.SimilarityMatrix(trajs, func(a, b sitm.Trajectory) float64 {
		return legacyE6TrajSim(a, b, sim, e6SpatialWeight)
	})
	return m, legacyE6KMedoidsMatrix(m, e6K, e6Seed)
}

// e6Interned runs the same pipeline on the interned engine: corpus +
// precomputed cell table + flat-scratch kernels + cached-distance PAM.
func e6Interned(trajs []sitm.Trajectory, sim sitm.CellSimilarity) ([][]float64, sitm.Clusters) {
	c := sitm.NewSimilarityCorpus(trajs)
	m := c.PairwiseMatrix(c.CellTable(sim), e6SpatialWeight)
	return m, sitm.KMedoidsMatrix(m, e6K, e6Seed)
}

// BenchmarkE6LegacyProfiling (E6 before): 1000 trajectories, hierarchy
// kernel re-walked per cell-position pair inside every trajectory pair's
// DTW, 2-D DP and Jaccard maps allocated per pair, O(n²k) PAM sweeps.
func BenchmarkE6LegacyProfiling(b *testing.B) {
	trajs := e6Trajectories(b)
	sim := e6Hierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cl := e6Legacy(trajs, sim); len(cl.Medoids) != e6K {
			b.Fatal("clustering collapsed")
		}
	}
}

// BenchmarkE6InternedProfiling (E6 after): the same inputs and bit-for-bit
// the same outputs over the interned analytics core.
func BenchmarkE6InternedProfiling(b *testing.B) {
	trajs := e6Trajectories(b)
	sim := e6Hierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cl := e6Interned(trajs, sim); len(cl.Medoids) != e6K {
			b.Fatal("clustering collapsed")
		}
	}
}

// TestE6InternedBeatsLegacy enforces the E6 acceptance criterion in
// tier-1: on the 1k-trajectory profiling pipeline (pairwise similarity
// matrix + k-medoids), the interned engine must be ≥5× faster than the
// legacy string path — and produce bit-for-bit identical output: the two
// matrices compare equal with ==, and the clusterings are identical.
func TestE6InternedBeatsLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E6 workload")
	}
	trajs := e6Trajectories(t)
	sim := e6Hierarchy(t)

	startLegacy := time.Now()
	legacyM, legacyCl := e6Legacy(trajs, sim)
	legacyDur := time.Since(startLegacy)

	// Best of three for the fast side (the slow side dominates the ratio).
	var internedDur time.Duration
	var internedM [][]float64
	var internedCl sitm.Clusters
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		internedM, internedCl = e6Interned(trajs, sim)
		if d := time.Since(start); rep == 0 || d < internedDur {
			internedDur = d
		}
	}

	for i := range legacyM {
		for j := range legacyM[i] {
			if legacyM[i][j] != internedM[i][j] {
				t.Fatalf("matrix diverged at (%d, %d): legacy %v, interned %v (must be bit-identical)",
					i, j, legacyM[i][j], internedM[i][j])
			}
		}
	}
	for i := range legacyCl.Medoids {
		if legacyCl.Medoids[i] != internedCl.Medoids[i] {
			t.Fatalf("medoids diverged: legacy %v, interned %v", legacyCl.Medoids, internedCl.Medoids)
		}
	}
	for i := range legacyCl.Assign {
		if legacyCl.Assign[i] != internedCl.Assign[i] {
			t.Fatalf("assignment diverged at %d", i)
		}
	}
	if internedDur*5 > legacyDur {
		t.Fatalf("interned %v not ≥5x faster than legacy %v (%.1fx)",
			internedDur, legacyDur, float64(legacyDur)/float64(internedDur))
	}
	t.Logf("E6: legacy %v, interned %v (%.0fx)", legacyDur, internedDur, float64(legacyDur)/float64(internedDur))
}

// ---- E7 facade view: the storage → analytics handoff ---------------------
// (The full concurrent mixed workload and its enforced ≥3× criterion live
// in internal/store; these two show the handoff itself at the public API.)

// BenchmarkStoreCorpusRebuild is the pre-handoff path: copy the store out
// and re-intern every trajectory into a fresh corpus.
func BenchmarkStoreCorpusRebuild(b *testing.B) {
	st, _ := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := sitm.NewSimilarityCorpus(st.All()); c.Len() == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkStoreCorpusHandoff is Store.Corpus: the write-time encodings
// are handed to the similarity engine with zero re-interning.
func BenchmarkStoreCorpusHandoff(b *testing.B) {
	st, _ := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := st.Corpus(); c.Len() == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkStoreSequencesHandoff is Store.Sequences feeding PrefixSpan
// without re-encoding (the mining side of E7).
func BenchmarkStoreSequencesHandoff(b *testing.B) {
	st, _ := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict, seqs := st.Sequences()
		if got := sitm.PrefixSpanInterned(dict, seqs, len(seqs)/20, 4); len(got) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// benchSimilaritySample returns a fixed-size trajectory sample and the
// hierarchy-aware kernel for the pairwise benches.
func benchSimilaritySample(b *testing.B, n int) ([]sitm.Trajectory, func(a, x sitm.Trajectory) float64) {
	b.Helper()
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	if len(trajs) < n {
		b.Fatalf("only %d trajectories", len(trajs))
	}
	sim := sitm.HierarchyCellSimilarity(sg, h)
	return trajs[:n], func(a, x sitm.Trajectory) float64 {
		return sitm.TrajectorySimilarity(a, x, sim, 0.7)
	}
}

// BenchmarkSimilarityMatrixSequentialFull is the seed's pairwise pattern:
// every ordered pair (i, j), i ≠ j, evaluated one after another — exactly
// the matrix loop the seed's KMedoids ran.
func BenchmarkSimilarityMatrixSequentialFull(b *testing.B) {
	trajs, simFn := benchSimilaritySample(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := len(trajs)
		m := make([][]float64, n)
		for r := range m {
			m[r] = make([]float64, n)
			for c := range m[r] {
				if r != c {
					m[r][c] = simFn(trajs[r], trajs[c])
				}
			}
		}
	}
}

// BenchmarkSimilarityMatrixParallel measures SimilarityMatrix: upper
// triangle only (half the kernel calls), fanned out over the worker pool.
func BenchmarkSimilarityMatrixParallel(b *testing.B) {
	trajs, simFn := benchSimilaritySample(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sitm.SimilarityMatrix(trajs, simFn)
	}
}

// BenchmarkKMedoidsClustering measures end-to-end visitor profiling on the
// parallel engine: parallel matrix + PAM refinement.
func BenchmarkKMedoidsClustering(b *testing.B) {
	trajs, simFn := benchSimilaritySample(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cl := sitm.KMedoids(trajs, 4, simFn, 7); len(cl.Medoids) != 4 {
			b.Fatal("clustering collapsed")
		}
	}
}

// BenchmarkKMedoidsMatrixReuse measures clustering when the matrix is
// precomputed once and reused — the sweep-over-k workflow.
func BenchmarkKMedoidsMatrixReuse(b *testing.B) {
	trajs, simFn := benchSimilaritySample(b, 60)
	m := sitm.SimilarityMatrix(trajs, simFn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cl := sitm.KMedoidsMatrix(m, 4, 7); len(cl.Medoids) != 4 {
			b.Fatal("clustering collapsed")
		}
	}
}

// BenchmarkTrajectorySimilarity measures the hierarchy-aware similarity.
func BenchmarkTrajectorySimilarity(b *testing.B) {
	sg, h, err := sitm.BuildLouvre()
	if err != nil {
		b.Fatal(err)
	}
	d, _, err := sitm.GenerateLouvreDataset(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	trajs, _ := sitm.BuildTrajectories(d.Detections(), sitm.BuildOptions{
		DropZeroDuration: true, SessionGap: 10 * time.Hour,
	})
	if len(trajs) < 2 {
		b.Fatal("need trajectories")
	}
	sim := sitm.HierarchyCellSimilarity(sg, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sitm.TrajectorySimilarity(trajs[i%len(trajs)], trajs[(i+1)%len(trajs)], sim, 0.7)
	}
}
